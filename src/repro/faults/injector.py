"""The fault injector: schedules a plan and answers the narrow hooks.

One :class:`FaultInjector` binds a :class:`~repro.faults.plan.FaultPlan`
to a :class:`~repro.cloud.datacenter.Datacenter`.  ``arm()`` schedules
every spec's injection (and recovery) as engine events and publishes
the injector at ``engine.faults`` — the single attribute every
instrumented seam checks, mirroring the tracer's one-attribute-check
guard, so an unfaulted run pays nothing and replays byte-identically.

Hooks answered (the complete injection surface):

* ``Kvm.create_vm``            → :meth:`check_vm_create` (crashed host)
* ``KsmDaemon._wake``          → :meth:`ksm_stalled`
* ``PreCopyMigration`` loop    → :meth:`on_precopy_iteration`
* ``PostCopyMigration`` fill   → :meth:`on_postcopy_chunk`
* ``FleetMonitor`` probe setup → :meth:`wrap_locator` / :meth:`crashed_hosts`

Every injection and recovery is appended to :attr:`injections`, counted
in ``engine.perf.faults_injected`` / ``faults_recovered``, and emitted
as a ``fault.inject`` / ``fault.recover`` trace instant — the property
harness cross-checks all three records against each other.
"""

from repro.errors import HypervisorError, MigrationError
from repro.faults.plan import FaultPlan

_FOREVER = float("inf")


class FaultInjector:
    """Deterministically injects one plan into one datacenter."""

    def __init__(self, datacenter, plan=None):
        self.datacenter = datacenter
        self.engine = datacenter.engine
        self.plan = plan if plan is not None else FaultPlan()
        #: Every injection/recovery/skip, in virtual-time order:
        #: dicts with ``at``/``kind``/``target``/``phase``.
        self.injections = []
        self._armed = False
        #: host name -> saved uplink latency (active latency spikes).
        self._spiked = {}
        #: machine name -> stall end time (ksm stalls).
        self._ksm_stalls = {}
        #: tenant name -> block end time (probe timeouts).
        self._probe_blocks = {}
        #: armed migration drops: [spec, ...] consumed one migration each.
        self._migration_drops = []

    # -- arming ------------------------------------------------------------

    def arm(self, base=0.0):
        """Schedule the whole plan and publish at ``engine.faults``.

        ``base`` offsets every spec's injection time: plans are written
        against a run that starts at virtual time zero, so a branch
        forked from a warmed fleet arms with ``base=engine.now`` and
        the same plan plays out relative to the fork point.
        """
        if self._armed:
            return self
        self._armed = True
        self.engine.faults = self
        for spec in self.plan:
            self.engine.call_at(base + spec.at, self._inject, spec)
        return self

    # -- bookkeeping -------------------------------------------------------

    def _record(self, kind, target, phase, **detail):
        engine = self.engine
        entry = {"at": engine.now, "kind": kind, "target": target, "phase": phase}
        self.injections.append(entry)
        if phase == "inject":
            engine.perf.faults_injected += 1
        elif phase == "recover":
            engine.perf.faults_recovered += 1
        tracer = engine.tracer
        if tracer.enabled:
            args = {"kind": kind, "target": target}
            args.update(detail)
            tracer.instant(f"fault.{phase}", "fault", track="faults", args=args)
            tracer.metrics.counter(f"faults.{phase}", kind=kind).inc()
        return entry

    def _resolve_host(self, selector):
        hosts = self.datacenter.hosts
        if selector in hosts:
            return hosts[selector]
        if isinstance(selector, str) and selector.startswith("#"):
            # Index selectors resolve over *up* hosts (name-sorted):
            # crashing a host that never booted would be a no-op, and
            # lazy boots mean much of the fleet stays offline.
            names = sorted(n for n, h in hosts.items() if h.state == "up")
            if names:
                return hosts[names[int(selector[1:]) % len(names)]]
        return None

    def _resolve_tenant(self, selector):
        tenants = self.datacenter.tenants
        if selector in tenants:
            return tenants[selector]
        if isinstance(selector, str) and selector.startswith("#"):
            running = self.datacenter.running_tenants()
            if running:
                return running[int(selector[1:]) % len(running)]
        return None

    def _schedule_recovery(self, spec, fn, *args):
        if spec.duration is not None:
            self.engine.call_at(self.engine.now + spec.duration, fn, *args)

    # -- injection dispatch ------------------------------------------------

    def _inject(self, spec):
        handler = getattr(self, f"_inject_{spec.kind}")
        handler(spec)

    def _inject_host_crash(self, spec):
        host = self._resolve_host(spec.target)
        if host is None or host.state != "up":
            self._record("host_crash", spec.target, "skipped")
            return
        host.crash()
        self._record("host_crash", host.name, "inject")
        self._schedule_recovery(spec, self._recover_host_crash, spec, host)

    def _recover_host_crash(self, spec, host):
        if host.recover():
            self._record("host_crash", host.name, "recover")

    def _inject_partition(self, spec):
        host = self._resolve_host(spec.target)
        if host is None or host.uplink is None or host.partitioned:
            self._record("partition", spec.target, "skipped")
            return
        host.partition()
        self._record("partition", host.name, "inject")
        self._schedule_recovery(spec, self._recover_partition, spec, host)

    def _recover_partition(self, spec, host):
        if host.partitioned and host.state != "crashed":
            host.heal()
            self._record("partition", host.name, "recover")

    def _inject_latency_spike(self, spec):
        host = self._resolve_host(spec.target)
        if host is None or host.uplink is None or host.name in self._spiked:
            self._record("latency_spike", spec.target, "skipped")
            return
        self._spiked[host.name] = host.uplink.latency_s
        host.uplink.latency_s *= spec.factor
        self._record("latency_spike", host.name, "inject", factor=spec.factor)
        self._schedule_recovery(spec, self._recover_latency_spike, spec, host)

    def _recover_latency_spike(self, spec, host):
        saved = self._spiked.pop(host.name, None)
        if saved is not None:
            host.uplink.latency_s = saved
            self._record("latency_spike", host.name, "recover")

    def _inject_ksm_stall(self, spec):
        host = self._resolve_host(spec.target)
        if host is None or host.ksm is None:
            self._record("ksm_stall", spec.target, "skipped")
            return
        until = (
            _FOREVER if spec.duration is None else self.engine.now + spec.duration
        )
        self._ksm_stalls[host.name] = until
        self._record("ksm_stall", host.name, "inject")
        self._schedule_recovery(spec, self._recover_ksm_stall, spec, host)

    def _recover_ksm_stall(self, spec, host):
        if self._ksm_stalls.pop(host.name, None) is not None:
            self._record("ksm_stall", host.name, "recover")

    def _inject_probe_timeout(self, spec):
        tenant = self._resolve_tenant(spec.target)
        if tenant is None:
            self._record("probe_timeout", spec.target, "skipped")
            return
        until = (
            _FOREVER if spec.duration is None else self.engine.now + spec.duration
        )
        self._probe_blocks[tenant.name] = until
        self._record("probe_timeout", tenant.name, "inject")
        self._schedule_recovery(spec, self._recover_probe_timeout, spec, tenant)

    def _recover_probe_timeout(self, spec, tenant):
        if self._probe_blocks.pop(tenant.name, None) is not None:
            self._record("probe_timeout", tenant.name, "recover")

    def _inject_guest_hang(self, spec):
        tenant = self._resolve_tenant(spec.target)
        if tenant is None or tenant.vm is None or tenant.state != "running":
            self._record("guest_hang", spec.target, "skipped")
            return
        tenant.vm.pause()
        self._record("guest_hang", tenant.name, "inject")
        self._schedule_recovery(spec, self._recover_guest_hang, spec, tenant)

    def _recover_guest_hang(self, spec, tenant):
        vm = tenant.vm
        if vm is not None and vm.status not in ("terminated",) and vm.paused:
            vm.resume()
            self._record("guest_hang", tenant.name, "recover")

    def _inject_migration_drop(self, spec):
        # Arms a tripwire; the record lands when a migration trips it
        # (or never, if no matching migration runs — chaos plans are
        # allowed to miss).
        self._migration_drops.append(spec)
        self._record(
            "migration_drop",
            spec.mode or "any",
            "inject",
            iteration=spec.iteration,
        )

    # -- hook API (the narrow seams call these) ----------------------------

    def host_crashed(self, name):
        """Whether ``name`` is currently a crashed host."""
        host = self.datacenter.hosts.get(name)
        return host is not None and host.state == "crashed"

    def crashed_hosts(self):
        """Name-sorted crashed hosts (fleet sweeps report these)."""
        return [
            self.datacenter.hosts[name]
            for name in sorted(self.datacenter.hosts)
            if self.datacenter.hosts[name].state == "crashed"
        ]

    def check_vm_create(self, system):
        """``Kvm.create_vm`` hook: no new VMs on a crashed host."""
        if self.host_crashed(system.name):
            raise HypervisorError(
                f"fault injection: host {system.name} has crashed"
            )

    def ksm_stalled(self, daemon):
        """``KsmDaemon._wake`` hook: swallow wakes during a stall."""
        until = self._ksm_stalls.get(daemon.machine.name)
        if until is None:
            return False
        if self.engine.now < until:
            return True
        # Window elapsed without an explicit recovery event having run
        # yet (ties at the boundary): treat as over.
        return False

    def _trip_migration_drop(self, mode, point, vm_name):
        for index, spec in enumerate(self._migration_drops):
            if spec.mode is not None and spec.mode != mode:
                continue
            if spec.iteration != point:
                continue
            del self._migration_drops[index]
            self._record(
                "migration_drop", vm_name, "trip", mode=mode, point=point
            )
            raise MigrationError(
                f"fault injection: {mode} transport dropped at "
                f"{'iteration' if mode == 'precopy' else 'fill chunk'} {point}"
            )

    def on_precopy_iteration(self, migration, iteration):
        """Pre-copy hook: drop the stream entering ``iteration``."""
        self._trip_migration_drop("precopy", iteration, migration.vm.name)

    def on_postcopy_chunk(self, migration, chunk_index):
        """Post-copy hook: drop the stream before fill chunk N."""
        self._trip_migration_drop("postcopy", chunk_index, migration.vm.name)

    def probe_blocked(self, tenant_name):
        """Whether a tenant's detection probes currently time out."""
        until = self._probe_blocks.get(tenant_name)
        return until is not None and self.engine.now < until

    def wrap_locator(self, tenant_name, locator):
        """Fleet-monitor hook: probes of a blocked tenant see no guest
        (the detector raises DetectionError → verdict ``unreachable``)."""

        def _faulted_locator():
            if self.probe_blocked(tenant_name):
                return None
            return locator()

        return _faulted_locator

    def __repr__(self):
        return (
            f"<FaultInjector specs={len(self.plan)} "
            f"injections={len(self.injections)} armed={self._armed}>"
        )
