"""Deterministic fault injection for the simulated stack.

Public surface:

* :class:`~repro.faults.plan.FaultSpec` / :class:`~repro.faults.plan.FaultPlan`
  — composable, seedable descriptions of what goes wrong and when;
* :class:`~repro.faults.injector.FaultInjector` — binds a plan to a
  datacenter engine and performs the injections through narrow hooks;
* :class:`~repro.faults.chaos.ChaosCampaign` /
  :class:`~repro.faults.chaos.ChaosReport` — scores detection recall
  and latency under standard fault mixes.
"""

from repro.faults.chaos import (
    STANDARD_MIXES,
    ChaosCampaign,
    ChaosReport,
    standard_mix_plan,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FAULT_KINDS, FaultError, FaultPlan, FaultSpec

__all__ = [
    "FAULT_KINDS",
    "STANDARD_MIXES",
    "ChaosCampaign",
    "ChaosReport",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "standard_mix_plan",
]
