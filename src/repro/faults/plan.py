"""Fault plans: composable, seeded specifications of what goes wrong.

A :class:`FaultSpec` names one perturbation — a host crash, an uplink
partition, a migration transport drop — with the virtual time it fires,
an optional recovery delay, and a *target selector*.  A
:class:`FaultPlan` is an ordered bag of specs; the
:class:`~repro.faults.injector.FaultInjector` schedules every spec on
the datacenter engine and performs the injection through narrow hooks
in the hypervisor, migration, and cloud layers.

Target selectors resolve late, at injection time, so a plan can be
written (or generated from a seed) before the fleet exists:

* ``"h02"`` / ``"t003"`` — an explicit host / tenant name;
* ``"#3"`` — the 3rd (mod population) entry of the name-sorted host
  list or running-tenant list, whichever the fault kind targets.

Determinism: a plan is plain data.  Two runs with the same seed and
same plan inject the same faults at the same virtual instants, which is
what makes chaos reports byte-identical and the property-based harness
in ``tests/test_faults_properties.py`` shrinkable by seed.
"""

from repro.errors import ReproError


class FaultError(ReproError):
    """Raised for malformed fault specs or plans."""


#: The fault model catalog (see INTERNALS.md §8).
FAULT_KINDS = (
    "host_crash",      # host drops off the fabric; tenants degrade
    "partition",       # uplink severed (heals after ``duration``)
    "latency_spike",   # uplink latency multiplied by ``factor``
    "migration_drop",  # transport dies at a chosen migration point
    "ksm_stall",       # ksmd stops scanning for ``duration`` seconds
    "probe_timeout",   # a tenant's detection probes fail (unreachable)
    "guest_hang",      # the tenant's vCPUs freeze (workload stalls)
)

#: Kinds whose target selector names a host (the rest name a tenant,
#: except migration_drop which matches in-flight migrations).
HOST_KINDS = frozenset(("host_crash", "partition", "latency_spike", "ksm_stall"))
TENANT_KINDS = frozenset(("probe_timeout", "guest_hang"))


class FaultSpec:
    """One planned fault: kind + when + target + recovery + params."""

    __slots__ = ("kind", "at", "target", "duration", "mode", "iteration", "factor")

    def __init__(
        self,
        kind,
        at,
        target=None,
        duration=None,
        mode=None,
        iteration=1,
        factor=8.0,
    ):
        if kind not in FAULT_KINDS:
            raise FaultError(f"unknown fault kind {kind!r}")
        if at < 0:
            raise FaultError(f"fault time must be >= 0, got {at}")
        if duration is not None and duration <= 0:
            raise FaultError(f"fault duration must be positive, got {duration}")
        if mode not in (None, "precopy", "postcopy"):
            raise FaultError(f"unknown migration mode {mode!r}")
        if iteration < 1:
            raise FaultError("migration_drop iteration is 1-based")
        if factor <= 1.0:
            raise FaultError("latency_spike factor must exceed 1.0")
        self.kind = kind
        self.at = float(at)
        self.target = target
        self.duration = None if duration is None else float(duration)
        self.mode = mode
        self.iteration = int(iteration)
        self.factor = float(factor)

    def as_dict(self):
        """Deterministic plain-dict form (chaos reports, plan dumps)."""
        record = {"kind": self.kind, "at": self.at, "target": self.target}
        if self.duration is not None:
            record["duration"] = self.duration
        if self.kind == "migration_drop":
            record["mode"] = self.mode
            record["iteration"] = self.iteration
        if self.kind == "latency_spike":
            record["factor"] = self.factor
        return record

    def __repr__(self):
        extra = f" +{self.duration:g}s" if self.duration is not None else ""
        return f"<FaultSpec {self.kind} @{self.at:g}s {self.target}{extra}>"


class FaultPlan:
    """An ordered, composable collection of :class:`FaultSpec`."""

    def __init__(self, specs=()):
        self.specs = list(specs)

    # -- composition -------------------------------------------------------

    def add(self, spec):
        self.specs.append(spec)
        return self

    def extend(self, other):
        """Fold another plan (or iterable of specs) into this one."""
        self.specs.extend(other.specs if isinstance(other, FaultPlan) else other)
        return self

    def __len__(self):
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    def as_dict(self):
        return {"specs": [spec.as_dict() for spec in self.specs]}

    # -- convenience constructors (one per catalog entry) ------------------

    def host_crash(self, at, target, duration=None):
        return self.add(FaultSpec("host_crash", at, target, duration=duration))

    def partition(self, at, target, duration=None):
        return self.add(FaultSpec("partition", at, target, duration=duration))

    def latency_spike(self, at, target, duration, factor=8.0):
        return self.add(
            FaultSpec("latency_spike", at, target, duration=duration, factor=factor)
        )

    def migration_drop(self, at, mode=None, iteration=1):
        return self.add(
            FaultSpec("migration_drop", at, mode=mode, iteration=iteration)
        )

    def ksm_stall(self, at, target, duration):
        return self.add(FaultSpec("ksm_stall", at, target, duration=duration))

    def probe_timeout(self, at, target, duration=None):
        return self.add(FaultSpec("probe_timeout", at, target, duration=duration))

    def guest_hang(self, at, target, duration=None):
        return self.add(FaultSpec("guest_hang", at, target, duration=duration))

    # -- seeded generation -------------------------------------------------

    @classmethod
    def random(cls, rng, faults=6, horizon=300.0, kinds=FAULT_KINDS):
        """Draw a random plan from ``rng`` (a ``random.Random``).

        Every draw comes from the one stream, so a plan is a pure
        function of the RNG state — the property-based harness relies
        on this to regenerate (and seed-bisect) failing plans.
        """
        plan = cls()
        for _ in range(faults):
            kind = rng.choice(list(kinds))
            at = rng.uniform(0.0, horizon)
            duration = (
                rng.uniform(5.0, horizon / 2.0) if rng.random() < 0.7 else None
            )
            target = f"#{rng.randrange(0, 16)}"
            if kind == "latency_spike":
                plan.latency_spike(
                    at,
                    target,
                    duration=duration or 30.0,
                    factor=rng.uniform(2.0, 64.0),
                )
            elif kind == "migration_drop":
                plan.migration_drop(
                    at,
                    mode=rng.choice((None, "precopy", "postcopy")),
                    iteration=rng.randint(1, 3),
                )
            elif kind == "ksm_stall":
                plan.ksm_stall(at, target, duration=duration or 20.0)
            else:
                plan.add(FaultSpec(kind, at, target, duration=duration))
        return plan

    def __repr__(self):
        return f"<FaultPlan specs={len(self.specs)}>"
