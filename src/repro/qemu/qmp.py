"""The QEMU Machine Protocol (QMP): the structured monitor.

Real QEMU serves two monitor flavours: the human monitor (HMP — our
:mod:`repro.qemu.monitor`) and a JSON command protocol for tooling.
Recon frameworks and cloud control planes speak QMP, so the
reproduction carries it too: a greeting banner, ``qmp_capabilities``
negotiation, and the command set the attack and experiments need.

Wire format: one JSON document per packet (line-delimited in spirit).
"""

import json

from repro.errors import MonitorError
from repro.qemu.config import QEMU_VERSION
from repro.sim.process import ChannelClosed

GREETING = {
    "QMP": {
        "version": {"qemu": {"micro": 50, "minor": 9, "major": 2}},
        "capabilities": [],
    }
}


class QmpServer:
    """Serves QMP on a node port for one VM."""

    def __init__(self, vm, port):
        self.vm = vm
        self.port = port
        self.node = vm.host_system.net_node
        self.engine = vm.engine
        self.closed = False
        self.node.listen(port, handler=self._on_connect)

    def _on_connect(self, connection):
        self.engine.process(
            self._session(connection.server), name=f"qmp:{self.port}"
        )

    def _session(self, endpoint):
        endpoint.send(json.dumps(GREETING).encode("ascii"), kind="qmp")
        negotiated = False
        try:
            while not self.closed:
                packet = yield endpoint.recv()
                try:
                    request = json.loads(packet.payload.decode("ascii"))
                except (ValueError, AttributeError):
                    endpoint.send(
                        _error("GenericError", "invalid JSON"), kind="qmp"
                    )
                    continue
                command = request.get("execute")
                request_id = request.get("id")
                if command is None:
                    endpoint.send(
                        _error("GenericError", "no 'execute' key", request_id),
                        kind="qmp",
                    )
                    continue
                if not negotiated and command != "qmp_capabilities":
                    endpoint.send(
                        _error(
                            "CommandNotFound",
                            "capabilities negotiation required",
                            request_id,
                        ),
                        kind="qmp",
                    )
                    continue
                if command == "qmp_capabilities":
                    negotiated = True
                    endpoint.send(_ok({}, request_id), kind="qmp")
                    continue
                try:
                    result = self.execute(command, request.get("arguments") or {})
                    endpoint.send(_ok(result, request_id), kind="qmp")
                except MonitorError as error:
                    endpoint.send(
                        _error("GenericError", str(error), request_id),
                        kind="qmp",
                    )
        except ChannelClosed:
            return

    # -- command dispatch ---------------------------------------------------

    def execute(self, command, arguments):
        handler = getattr(self, "_cmd_" + command.replace("-", "_"), None)
        if handler is None:
            raise MonitorError(f"The command {command} has not been found")
        return handler(arguments)

    def _cmd_query_version(self, _args):
        return {"qemu": QEMU_VERSION}

    def _cmd_query_status(self, _args):
        vm = self.vm
        running = vm.status == "running" and not vm.paused
        status = "running" if running else (
            "inmigrate" if vm.status == "inmigrate" else "paused"
        )
        return {"status": status, "running": running, "singlestep": False}

    def _cmd_query_kvm(self, _args):
        return {"enabled": self.vm.config.enable_kvm, "present": True}

    def _cmd_query_block(self, _args):
        return [
            {
                "device": f"drive{index}",
                "inserted": {
                    "file": device.drive_spec.path,
                    "drv": device.drive_spec.fmt,
                },
            }
            for index, device in enumerate(self.vm.block_devices)
        ]

    def _cmd_query_migrate(self, _args):
        stats = self.vm.migration_stats
        if stats is None:
            return {}
        return {
            "status": stats.status,
            "total-time": int(stats.total_time * 1000),
            "downtime": int(stats.downtime * 1000),
            "ram": {
                "transferred": stats.ram_bytes,
                "duplicate": stats.zero_pages,
                "normal": stats.pages_transferred,
                "dirty-sync-count": stats.iterations,
            },
        }

    def _cmd_migrate(self, args):
        uri = args.get("uri")
        if not uri:
            raise MonitorError("migrate: missing uri")
        self.vm.monitor.execute(f"migrate -d {uri}")
        return {}

    def _cmd_migrate_cancel(self, _args):
        self.vm.monitor.execute("migrate_cancel")
        return {}

    def _cmd_stop(self, _args):
        self.vm.pause()
        return {}

    def _cmd_cont(self, _args):
        self.vm.resume()
        return {}

    def _cmd_quit(self, _args):
        self.vm.quit()
        self.closed = True
        return {}

    def close(self):
        if self.closed:
            return
        self.closed = True
        if self.node.listener(self.port) is not None:
            self.node.close_port(self.port)


def _ok(result, request_id=None):
    response = {"return": result}
    if request_id is not None:
        response["id"] = request_id
    return json.dumps(response).encode("ascii")


def _error(error_class, description, request_id=None):
    response = {"error": {"class": error_class, "desc": description}}
    if request_id is not None:
        response["id"] = request_id
    return json.dumps(response).encode("ascii")


class QmpClient:
    """Drives a QMP server from a simulation process.

    Usage::

        client = QmpClient(node, server_node, 4600)
        greeting = yield from client.open()       # also negotiates
        status = yield from client.execute("query-status")
    """

    def __init__(self, from_node, to_node, port):
        self.endpoint = from_node.connect(to_node, port)
        self._next_id = 0

    def open(self):
        packet = yield self.endpoint.recv()
        greeting = json.loads(packet.payload.decode("ascii"))
        reply = yield from self.execute("qmp_capabilities")
        del reply
        return greeting

    def execute(self, command, arguments=None):
        self._next_id += 1
        request = {"execute": command, "id": self._next_id}
        if arguments:
            request["arguments"] = arguments
        self.endpoint.send(json.dumps(request).encode("ascii"), kind="qmp")
        packet = yield self.endpoint.recv()
        response = json.loads(packet.payload.decode("ascii"))
        if "error" in response:
            raise MonitorError(response["error"]["desc"])
        return response["return"]

    def close(self):
        self.endpoint.close()
