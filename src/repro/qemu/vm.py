"""The QEMU process: one VM on one host system.

A :class:`QemuVm` is simultaneously:

* a *host process* (visible in ``ps -ef`` with its full command line —
  the recon surface),
* a *KVM VM* (guest memory + VMCS pages + exit counters),
* a *guest System* (a whole OS environment at depth parent+1),
* a set of *devices* (virtio disk and NIC with hostfwd rules),
* a *QEMU Monitor* (optionally served over telnet).

VMs launched with ``incoming_port`` start paused in the ``inmigrate``
state with no guest OS: they adopt the guest of whichever VM migrates
into them — the mechanism CloudSkulk rides on.
"""

from repro.errors import QemuError
from repro.guest.system import System
from repro.qemu.devices.block import VirtioBlockDevice
from repro.qemu.devices.net import VirtioNic
from repro.qemu.devices.serial import TelnetMonitorServer
from repro.qemu.monitor import QemuMonitor
from repro.qemu.qemu_img import host_images


class QemuVm:
    """One running QEMU process."""

    def __init__(self, host_system, config):
        if not host_system.booted:
            raise QemuError("host system is not booted")
        if config.enable_kvm and host_system.kvm is None:
            raise QemuError(
                "-enable-kvm: /dev/kvm not available "
                "(call host.enable_kvm() / expose nested VMX)"
            )
        if host_system.net_node is None:
            raise QemuError("host system has no network node")
        self.host_system = host_system
        self.config = config
        self.name = config.name
        self.engine = host_system.engine

        # Host process entry (the recon surface).
        self.process = host_system.kernel.table.spawn(
            "qemu-system-x86_64",
            config.to_command_line(),
            ppid=1,
            user="qemu",
            start_time=self.engine.now,
        )

        # Kernel-side VM state.
        self.kvm_vm = host_system.kvm.create_vm(
            config.name,
            vcpus=config.smp,
            memory_mb=config.memory_mb,
            expose_vmx=config.nested_vmx,
        )
        # Backref for host-side tooling that only holds kernel handles
        # (incident response locating a rogue VM by name).
        self.kvm_vm._qemu_vm = self

        # Devices.  Images resolve in the filesystem of the system this
        # QEMU process runs on (GuestX's own disk for a nested VM).
        images = host_images(host_system)
        self.block_devices = []
        for drive in config.drives:
            image = images.open(drive.path)
            self.block_devices.append(VirtioBlockDevice(self, drive, image))
        self.nics = [VirtioNic(self, spec) for spec in config.nics]

        # Guest OS (absent for -incoming destinations until adoption).
        self.guest = None
        if config.incoming_port is None:
            self.guest = System(
                name=config.name,
                machine=host_system.machine,
                memory=self.kvm_vm.memory,
                cpu=host_system.cpu.virtual_copy(
                    config.smp, expose_vmx=config.nested_vmx
                ),
                depth=self.kvm_vm.depth,
                parent=host_system,
                os_name=host_system.os_name,
                kernel_version=host_system.kernel_version,
            )
            self.guest.vm_handle = self.kvm_vm
            self.guest.qemu_vm = self
            if self.nics:
                self.guest.net_node = self.nics[0].guest_node

        # Control plane.
        self.monitor = QemuMonitor(self)
        self.monitor_server = None
        if config.monitor is not None:
            self.monitor_server = TelnetMonitorServer(
                host_system.net_node, config.monitor.port, self.monitor
            )

        self.status = "inmigrate" if config.incoming_port is not None else "prelaunch"
        self.paused = config.incoming_port is not None
        self._resume_waiters = []
        self.migration_stats = None
        self.migration_process = None
        self.active_migration = None
        self.migration_max_bandwidth = None
        self.migration_max_downtime = None
        self.migration_capabilities = {}
        self.incoming_process = None

        if config.incoming_port is not None:
            from repro.migration.precopy import MigrationDestination

            destination = MigrationDestination(self, config.incoming_port)
            self.incoming_process = destination.start()

    # -- lifecycle ---------------------------------------------------------

    def run_boot(self):
        """Generator: BIOS + guest OS boot; leaves the VM `running`."""
        if self.status not in ("prelaunch",):
            raise QemuError(f"cannot boot VM in state {self.status!r}")
        self.status = "booting"
        yield self.engine.timeout(0.4)  # firmware + qemu device init
        boot_cost = self.guest.boot()
        yield self.engine.timeout(boot_cost)
        self.status = "running"
        return self

    def pause(self):
        """`stop` — freeze the guest (migration downtime, or operator)."""
        self.paused = True

    def resume(self):
        """`cont` — let the guest run again."""
        self.paused = False
        waiters, self._resume_waiters = self._resume_waiters, []
        for event in waiters:
            event.succeed()

    def wait_if_paused(self):
        """Event that fires immediately if running, else on resume.

        Workloads yield this between operations so migration downtime
        actually stops them.
        """
        event = self.engine.event()
        if not self.paused:
            event.succeed()
        else:
            self._resume_waiters.append(event)
        return event

    def quit(self):
        """Terminate the QEMU process and release everything it owns."""
        if self.status == "terminated":
            return
        self.status = "terminated"
        self.paused = True
        for nic in self.nics:
            nic.teardown()
        if self.monitor_server is not None:
            self.monitor_server.close()
        if self.process.pid in self.host_system.kernel.table:
            self.host_system.kernel.table.kill(self.process.pid)
            self.host_system.kernel.table.reap(self.process.pid)
        self.kvm_vm.destroy()

    # -- migration adoption --------------------------------------------------

    def adopt_guest(self, guest_system):
        """Take ownership of a migrated-in guest OS.

        The guest System keeps its identity (kernel, processes, page
        cache, files) but is re-parented onto this VM's memory domain,
        depth, and network attachment — its pfn references stay valid
        because migration populated identical page numbers.
        """
        if self.guest is not None:
            raise QemuError(f"{self.name} already has a guest")
        guest_system.memory = self.kvm_vm.memory
        guest_system.depth = self.kvm_vm.depth
        guest_system.parent = self.host_system
        guest_system.vm_handle = self.kvm_vm
        guest_system.machine = self.host_system.machine
        old_node = guest_system.net_node
        if self.nics:
            new_node = self.nics[0].guest_node
            if old_node is not None:
                # Carry listening services (sshd, netserver...) across.
                for port, listener in list(old_node._listeners.items()):
                    if port in new_node._listeners:
                        continue
                    listener.node = new_node
                    new_node._listeners[port] = listener
                    del old_node._listeners[port]
            guest_system.net_node = new_node
        # Workload processes blocked on the *source* VM's pause must wake
        # here: the guest they belong to now runs in this VM.
        old_vm = guest_system.qemu_vm
        guest_system.qemu_vm = self
        self.guest = guest_system
        if old_vm is not None and old_vm is not self:
            self._resume_waiters.extend(old_vm._resume_waiters)
            old_vm._resume_waiters = []
        self.status = "running"
        self.resume()

    def __repr__(self):
        return f"<QemuVm {self.name} status={self.status} pid={self.process.pid}>"


def launch_vm(host_system, config, record_history=True):
    """Start a QEMU process; returns (vm, boot_event).

    ``boot_event`` is the engine Process completing when the guest is up
    (for ``-incoming`` destinations it completes immediately: they sit
    paused awaiting migration).  When ``record_history`` is true the
    command line lands in the host shell history — which is exactly
    where the rootkit's recon later finds it.
    """
    if record_history:
        host_system.shell.record(config.to_command_line())
    vm = QemuVm(host_system, config)
    if vm.guest is not None:
        boot = host_system.engine.process(vm.run_boot(), name=f"boot:{vm.name}")
    else:
        boot = host_system.engine.event()
        boot.succeed(vm)
    return vm, boot
