"""QEMU configuration and its command-line representation.

Live migration requires the destination VM to be created with the same
configuration as the source (paper §IV-A) — so the config object knows
how to compare itself (:meth:`QemuConfig.mismatches`) and how to
round-trip through a realistic ``qemu-system-x86_64`` command line,
because the attack recovers it from shell history / ``ps -ef`` output.
"""

import shlex

from repro.errors import ConfigError

QEMU_BINARY = "qemu-system-x86_64"
QEMU_VERSION = "2.9.50 (v2.9.0-989-g43771d5)"


class DriveSpec:
    """One -hda/-drive disk."""

    def __init__(self, path, interface="virtio", fmt="qcow2"):
        self.path = path
        self.interface = interface
        self.fmt = fmt

    def __eq__(self, other):
        return (
            isinstance(other, DriveSpec)
            and (self.path, self.interface, self.fmt)
            == (other.path, other.interface, other.fmt)
        )

    def __repr__(self):
        return f"<DriveSpec {self.path} ({self.fmt}/{self.interface})>"


class NicSpec:
    """One user-mode NIC: -netdev user + -device virtio-net-pci.

    ``hostfwds`` is a list of (proto, host_port, guest_port) tuples.
    """

    def __init__(self, netdev_id="net0", model="virtio-net-pci", hostfwds=()):
        self.netdev_id = netdev_id
        self.model = model
        self.hostfwds = [tuple(fwd) for fwd in hostfwds]

    def __eq__(self, other):
        return (
            isinstance(other, NicSpec)
            and (self.netdev_id, self.model, self.hostfwds)
            == (other.netdev_id, other.model, other.hostfwds)
        )

    def __repr__(self):
        return f"<NicSpec {self.netdev_id} {self.model} fwd={self.hostfwds}>"


class MonitorSpec:
    """-monitor telnet:host:port,server,nowait."""

    def __init__(self, host="127.0.0.1", port=5555):
        self.host = host
        self.port = port

    def __eq__(self, other):
        return isinstance(other, MonitorSpec) and (self.host, self.port) == (
            other.host,
            other.port,
        )

    def __repr__(self):
        return f"<MonitorSpec telnet:{self.host}:{self.port}>"


class QemuConfig:
    """Everything needed to launch one QEMU process."""

    def __init__(
        self,
        name,
        memory_mb=1024,
        smp=1,
        drives=(),
        nics=(),
        monitor=None,
        enable_kvm=True,
        cpu_model="host",
        nested_vmx=False,
        incoming_port=None,
        display="curses",
    ):
        if memory_mb <= 0:
            raise ConfigError("memory_mb must be positive")
        if smp < 1:
            raise ConfigError("smp must be >= 1")
        self.name = name
        self.memory_mb = memory_mb
        self.smp = smp
        self.drives = list(drives)
        self.nics = list(nics)
        self.monitor = monitor
        self.enable_kvm = enable_kvm
        self.cpu_model = cpu_model
        self.nested_vmx = nested_vmx
        self.incoming_port = incoming_port
        self.display = display

    # -- comparison -----------------------------------------------------

    def mismatches(self, other):
        """Config differences that would break an incoming migration.

        Name, monitor port, hostfwd ports, and incoming mode may differ
        between source and destination; machine-visible properties must
        match.  Returns a list of human-readable mismatch strings.
        """
        problems = []
        if self.memory_mb != other.memory_mb:
            problems.append(
                f"memory: {self.memory_mb}MB != {other.memory_mb}MB"
            )
        if self.smp != other.smp:
            problems.append(f"smp: {self.smp} != {other.smp}")
        if len(self.drives) != len(other.drives):
            problems.append(
                f"drive count: {len(self.drives)} != {len(other.drives)}"
            )
        else:
            for mine, theirs in zip(self.drives, other.drives):
                if (mine.interface, mine.fmt) != (theirs.interface, theirs.fmt):
                    problems.append(
                        f"drive type: {mine.interface}/{mine.fmt} != "
                        f"{theirs.interface}/{theirs.fmt}"
                    )
        if [n.model for n in self.nics] != [n.model for n in other.nics]:
            problems.append("NIC models differ")
        if self.cpu_model != other.cpu_model:
            problems.append(
                f"cpu model: {self.cpu_model} != {other.cpu_model}"
            )
        return problems

    # -- command-line rendering ------------------------------------------

    def to_command_line(self):
        """The qemu-system-x86_64 invocation for this config."""
        parts = [QEMU_BINARY, "-name", self.name, "-m", str(self.memory_mb)]
        parts += ["-smp", str(self.smp)]
        if self.enable_kvm:
            parts.append("-enable-kvm")
        cpu = self.cpu_model
        if self.nested_vmx:
            cpu += ",+vmx"
        parts += ["-cpu", cpu]
        for drive in self.drives:
            parts += [
                "-drive",
                f"file={drive.path},if={drive.interface},format={drive.fmt}",
            ]
        for nic in self.nics:
            netdev = f"user,id={nic.netdev_id}"
            for proto, host_port, guest_port in nic.hostfwds:
                netdev += f",hostfwd={proto}::{host_port}-:{guest_port}"
            parts += ["-netdev", netdev]
            parts += ["-device", f"{nic.model},netdev={nic.netdev_id}"]
        if self.monitor is not None:
            parts += [
                "-monitor",
                f"telnet:{self.monitor.host}:{self.monitor.port},server,nowait",
            ]
        if self.incoming_port is not None:
            parts += ["-incoming", f"tcp:0:{self.incoming_port}"]
        parts += ["-display", self.display]
        return " ".join(parts)

    @classmethod
    def from_command_line(cls, cmdline):
        """Parse a qemu command line back into a config (recon path)."""
        tokens = shlex.split(cmdline)
        if not tokens or QEMU_BINARY not in tokens[0]:
            raise ConfigError(f"not a qemu command line: {cmdline[:60]!r}")
        config = cls(name="parsed", memory_mb=128)
        config.enable_kvm = False
        config.monitor = None
        index = 1
        while index < len(tokens):
            flag = tokens[index]
            if flag == "-enable-kvm":
                config.enable_kvm = True
                index += 1
                continue
            if index + 1 >= len(tokens) and flag.startswith("-"):
                raise ConfigError(f"dangling flag {flag!r}")
            value = tokens[index + 1] if index + 1 < len(tokens) else ""
            if flag == "-name":
                config.name = value
            elif flag == "-m":
                config.memory_mb = int(value)
            elif flag == "-smp":
                config.smp = int(value)
            elif flag == "-cpu":
                parts = value.split(",")
                config.cpu_model = parts[0]
                config.nested_vmx = "+vmx" in parts[1:]
            elif flag == "-drive":
                config.drives.append(_parse_drive(value))
            elif flag == "-hda":
                config.drives.append(DriveSpec(value, interface="ide"))
            elif flag == "-netdev":
                config.nics.append(_parse_netdev(value))
            elif flag == "-device":
                _apply_device(config, value)
            elif flag == "-monitor":
                config.monitor = _parse_monitor(value)
            elif flag == "-incoming":
                config.incoming_port = _parse_incoming(value)
            elif flag == "-display":
                config.display = value
            else:
                raise ConfigError(f"unsupported qemu flag {flag!r}")
            index += 2
        return config

    def clone_for_destination(
        self, name, monitor_port=None, incoming_port=4444, keep_hostfwds=True
    ):
        """A destination config matching this one (migration target).

        ``keep_hostfwds=False`` strips port forwards: a destination on
        the *same* node as a still-running source cannot bind the same
        host ports (the attacker re-adds them after killing the source
        — the paper's stealth step).  A nested destination keeps them,
        since its forwards bind on the RITM's own node.
        """
        monitor = None
        if monitor_port is not None:
            monitor = MonitorSpec(port=monitor_port)
        return QemuConfig(
            name=name,
            memory_mb=self.memory_mb,
            smp=self.smp,
            drives=[DriveSpec(d.path, d.interface, d.fmt) for d in self.drives],
            nics=[
                NicSpec(
                    n.netdev_id,
                    n.model,
                    list(n.hostfwds) if keep_hostfwds else [],
                )
                for n in self.nics
            ],
            monitor=monitor,
            enable_kvm=self.enable_kvm,
            cpu_model=self.cpu_model,
            nested_vmx=self.nested_vmx,
            incoming_port=incoming_port,
            display=self.display,
        )

    def __repr__(self):
        return (
            f"<QemuConfig {self.name} {self.memory_mb}MB smp={self.smp} "
            f"kvm={self.enable_kvm} nested={self.nested_vmx}>"
        )


def _parse_drive(value):
    fields = dict(
        part.split("=", 1) for part in value.split(",") if "=" in part
    )
    if "file" not in fields:
        raise ConfigError(f"-drive without file=: {value!r}")
    return DriveSpec(
        fields["file"],
        interface=fields.get("if", "virtio"),
        fmt=fields.get("format", "qcow2"),
    )


def _parse_netdev(value):
    parts = value.split(",")
    if parts[0] != "user":
        raise ConfigError(f"only user netdev supported, got {parts[0]!r}")
    netdev_id = None
    hostfwds = []
    for part in parts[1:]:
        if part.startswith("id="):
            netdev_id = part[3:]
        elif part.startswith("hostfwd="):
            hostfwds.append(_parse_hostfwd(part[len("hostfwd="):]))
    if netdev_id is None:
        raise ConfigError(f"-netdev without id=: {value!r}")
    return NicSpec(netdev_id=netdev_id, hostfwds=hostfwds)


def _parse_hostfwd(text):
    # tcp::2222-:22
    try:
        proto, rest = text.split(":", 1)
        left, right = rest.split("-", 1)
        host_port = int(left.strip(":") or 0)
        guest_port = int(right.strip(":") or 0)
    except ValueError as exc:
        raise ConfigError(f"bad hostfwd spec {text!r}") from exc
    return (proto, host_port, guest_port)


def _apply_device(config, value):
    parts = value.split(",")
    model = parts[0]
    fields = dict(part.split("=", 1) for part in parts[1:] if "=" in part)
    netdev_id = fields.get("netdev")
    if netdev_id is None:
        return
    for nic in config.nics:
        if nic.netdev_id == netdev_id:
            nic.model = model
            return
    raise ConfigError(f"-device references unknown netdev {netdev_id!r}")


def _parse_monitor(value):
    if not value.startswith("telnet:"):
        raise ConfigError(f"only telnet monitors supported: {value!r}")
    location = value[len("telnet:"):].split(",")[0]
    host, port = location.rsplit(":", 1)
    return MonitorSpec(host=host, port=int(port))


def _parse_incoming(value):
    if not value.startswith("tcp:"):
        raise ConfigError(f"only tcp incoming supported: {value!r}")
    return int(value.rsplit(":", 1)[1])
