"""The QEMU userspace VMM layer.

* :mod:`~repro.qemu.config` — :class:`QemuConfig` and a real command-line
  renderer/parser (the rootkit's recon recovers configs from `history`
  and `ps -ef` text, so the round-trip has to actually work).
* :mod:`~repro.qemu.vm` — :class:`QemuVm`: a host process that owns a KVM
  VM, a guest System, device models, and user networking.
* :mod:`~repro.qemu.monitor` — the QEMU Monitor command interpreter
  (`info qtree`, `info blockstats`, `migrate`, ...).
* :mod:`~repro.qemu.devices` — virtio block and net device models plus
  the telnet-multiplexed monitor serial port.
* :mod:`~repro.qemu.qemu_img` — disk images and the `qemu-img` utility.
"""

from repro.qemu.config import DriveSpec, MonitorSpec, NicSpec, QemuConfig
from repro.qemu.monitor import QemuMonitor
from repro.qemu.qemu_img import DiskImage, qemu_img_info
from repro.qemu.vm import QemuVm

__all__ = [
    "DiskImage",
    "DriveSpec",
    "MonitorSpec",
    "NicSpec",
    "QemuConfig",
    "QemuMonitor",
    "QemuVm",
    "qemu_img_info",
]
