"""Disk images and the `qemu-img` utility.

The recon phase uses ``qemu-img info`` on a running VM's disk path to
recover its virtual size and format (paper §IV-A), so images live as
structured entries in the *host* filesystem where the attacker can find
them.
"""

from repro.errors import QemuError


class DiskImage:
    """One qcow2/raw image file on a host filesystem."""

    def __init__(self, path, virtual_size_gb=20.0, fmt="qcow2", backing_file=None):
        if virtual_size_gb <= 0:
            raise QemuError("image size must be positive")
        self.path = path
        self.virtual_size_gb = virtual_size_gb
        self.fmt = fmt
        self.backing_file = backing_file
        #: Bytes actually allocated (qcow2 grows on demand).
        self.allocated_gb = min(virtual_size_gb, 3.1)

    def __repr__(self):
        return f"<DiskImage {self.path} {self.virtual_size_gb}G {self.fmt}>"


class ImageRegistry:
    """Host-wide registry of disk images, keyed by path."""

    def __init__(self):
        self._images = {}

    def create(self, path, virtual_size_gb=20.0, fmt="qcow2", backing_file=None):
        if path in self._images:
            raise QemuError(f"image already exists: {path!r}")
        image = DiskImage(path, virtual_size_gb, fmt, backing_file)
        self._images[path] = image
        return image

    def open(self, path):
        image = self._images.get(path)
        if image is None:
            raise QemuError(f"no such image: {path!r}")
        return image

    def exists(self, path):
        return path in self._images


def host_images(host_system):
    """The image registry of a host system (created on first use)."""
    registry = getattr(host_system, "_image_registry", None)
    if registry is None:
        registry = ImageRegistry()
        host_system._image_registry = registry
    return registry


def qemu_img_create(host_system, path, virtual_size_gb=20.0, fmt="qcow2"):
    """`qemu-img create -f FMT PATH SIZE`."""
    return host_images(host_system).create(path, virtual_size_gb, fmt)


def qemu_img_info(host_system, path):
    """`qemu-img info PATH` — returns the formatted report string."""
    image = host_images(host_system).open(path)
    lines = [
        f"image: {image.path}",
        f"file format: {image.fmt}",
        f"virtual size: {image.virtual_size_gb:g}G "
        f"({int(image.virtual_size_gb * 1024**3)} bytes)",
        f"disk size: {image.allocated_gb:.1f}G",
    ]
    if image.backing_file:
        lines.append(f"backing file: {image.backing_file}")
    return "\n".join(lines)
