"""The QEMU Monitor command interpreter.

Implements the command surface the paper's attack actually uses
(§IV-A): ``info qtree``, ``info blockstats``, ``info mtree``, ``info
mem``, ``info network``, ``info status``, ``migrate``,
``migrate_set_speed``, ``migrate_set_downtime``, ``info migrate``,
``stop``, ``cont``, and ``quit`` — plus ``info registers`` for basic
inspection.  Commands return their output text; state changes happen
synchronously except ``migrate``, which (with ``-d``) detaches a
background migration process exactly like real QEMU.
"""

from repro.errors import MonitorError
from repro.qemu.config import QEMU_VERSION


class QemuMonitor:
    """One VM's monitor."""

    def __init__(self, vm):
        self.vm = vm
        self.command_log = []

    def execute(self, command_line):
        """Run one monitor command; returns its output string."""
        text = command_line.strip()
        self.command_log.append(text)
        if not text:
            return ""
        parts = text.split()
        command, args = parts[0], parts[1:]
        if command == "info":
            if not args:
                raise MonitorError("info: missing subcommand")
            handler = getattr(self, f"_info_{args[0]}", None)
            if handler is None:
                raise MonitorError(f"info: unknown subcommand {args[0]!r}")
            return handler(args[1:])
        handler = getattr(self, f"_cmd_{command}", None)
        if handler is None:
            raise MonitorError(f"unknown command: {command!r}")
        return handler(args)

    # -- info subcommands -----------------------------------------------------

    def _info_version(self, _args):
        return QEMU_VERSION

    def _info_status(self, _args):
        vm = self.vm
        if vm.status == "running" and not vm.paused:
            return "VM status: running"
        if vm.status == "inmigrate":
            return "VM status: paused (inmigrate)"
        if vm.paused:
            return "VM status: paused"
        return f"VM status: {vm.status}"

    def _info_qtree(self, _args):
        lines = ["bus: main-system-bus", '  type System']
        for index, device in enumerate(self.vm.block_devices):
            lines.append(f"  dev: virtio-blk-pci, id \"\"")
            lines.append(f"    drive = \"drive{index}\"")
            lines.append(f"    file = \"{device.drive_spec.path}\"")
            lines.append(f"    format = \"{device.drive_spec.fmt}\"")
        for nic in self.vm.nics:
            lines.append(f"  dev: {nic.spec.model}, id \"\"")
            lines.append(f"    netdev = \"{nic.spec.netdev_id}\"")
        return "\n".join(lines)

    def _info_blockstats(self, _args):
        return "\n".join(
            device.blockstats_line(index)
            for index, device in enumerate(self.vm.block_devices)
        )

    def _info_mtree(self, _args):
        top = self.vm.config.memory_mb * 1024 * 1024 - 1
        return (
            "memory-region: system\n"
            f"  0000000000000000-{top:016x} (prio 0, ram): pc.ram\n"
            f"  size: {self.vm.config.memory_mb} MiB"
        )

    def _info_mem(self, _args):
        memory = self.vm.kvm_vm.memory
        touched = memory.touched_pages + memory.bulk_touched
        return (
            f"total pages: {memory.total_pages}\n"
            f"resident pages: {touched}\n"
            f"dirty-log: {'on' if memory.dirty_log_enabled else 'off'}"
        )

    def _info_network(self, _args):
        if not self.vm.nics:
            return "no network devices"
        return "\n".join(nic.info_line() for nic in self.vm.nics)

    def _info_registers(self, _args):
        vmcs = self.vm.kvm_vm.vmcs[0]
        return (
            f"vCPU #0  vpid={vmcs.vpid} launched={vmcs.launched}\n"
            f"total_exits={vmcs.total_exits:.0f}"
        )

    def _info_migrate(self, _args):
        stats = self.vm.migration_stats
        if stats is None:
            return "No migration in progress"
        return stats.monitor_text()

    def _info_cpus(self, _args):
        lines = []
        for index in range(self.vm.config.smp):
            marker = "*" if index == 0 else " "
            lines.append(
                f"{marker} CPU #{index}: thread_id={self.vm.process.pid + index}"
            )
        return "\n".join(lines)

    def _info_kvm(self, _args):
        enabled = "enabled" if self.vm.config.enable_kvm else "disabled"
        return f"kvm support: {enabled}"

    # -- state-changing commands ----------------------------------------------

    def _cmd_stop(self, _args):
        self.vm.pause()
        return ""

    def _cmd_cont(self, _args):
        self.vm.resume()
        return ""

    def _cmd_quit(self, _args):
        self.vm.quit()
        return ""

    def _cmd_system_powerdown(self, _args):
        self.vm.quit()
        return ""

    def _cmd_migrate_set_speed(self, args):
        if len(args) != 1:
            raise MonitorError("migrate_set_speed: expected one value")
        self.vm.migration_max_bandwidth = _parse_size(args[0])
        return ""

    def _cmd_migrate_set_downtime(self, args):
        if len(args) != 1:
            raise MonitorError("migrate_set_downtime: expected seconds")
        self.vm.migration_max_downtime = float(args[0])
        return ""

    def _cmd_migrate_set_capability(self, args):
        if len(args) != 2 or args[1] not in ("on", "off"):
            raise MonitorError(
                "migrate_set_capability: expected <name> on|off"
            )
        name = args[0]
        if name not in ("xbzrle", "auto-converge", "postcopy-ram", "dedup"):
            raise MonitorError(f"unknown migration capability {name!r}")
        self.vm.migration_capabilities[name] = args[1] == "on"
        return ""

    def _cmd_migrate_cancel(self, _args):
        migration = self.vm.active_migration
        if migration is None:
            return "No migration in progress"
        if migration.cancel():
            return ""
        return "Migration cannot be cancelled (switchover in progress)"

    def _cmd_hostfwd_add(self, args):
        # hostfwd_add tcp::HOST_PORT-:GUEST_PORT
        if len(args) != 1:
            raise MonitorError("hostfwd_add: expected one forward spec")
        from repro.errors import ConfigError
        from repro.qemu.config import _parse_hostfwd

        try:
            proto, host_port, guest_port = _parse_hostfwd(args[0])
        except ConfigError as error:
            raise MonitorError(str(error)) from error
        if not self.vm.nics:
            raise MonitorError("hostfwd_add: VM has no user netdev")
        self.vm.nics[0].add_hostfwd(proto, host_port, guest_port)
        return ""

    def _cmd_hostfwd_remove(self, args):
        # hostfwd_remove tcp::HOST_PORT
        if len(args) != 1:
            raise MonitorError("hostfwd_remove: expected proto::port")
        proto, _sep, port_text = args[0].partition("::")
        try:
            host_port = int(port_text)
        except ValueError as exc:
            raise MonitorError(f"bad hostfwd spec {args[0]!r}") from exc
        for nic in self.vm.nics:
            if nic.remove_hostfwd(proto, host_port):
                return ""
        raise MonitorError(f"hostfwd_remove: no such forward {args[0]!r}")

    def _cmd_migrate(self, args):
        detach = False
        if args and args[0] == "-d":
            detach = True
            args = args[1:]
        if len(args) != 1 or not args[0].startswith("tcp:"):
            raise MonitorError("migrate: expected tcp:<host>:<port> URI")
        _tcp, host, port = args[0].split(":")
        if self.vm.migration_capabilities.get("postcopy-ram"):
            from repro.migration.postcopy import PostCopyMigration

            migration = PostCopyMigration(
                self.vm,
                destination_port=int(port),
                max_bandwidth=getattr(self.vm, "migration_max_bandwidth", None),
            )
        else:
            from repro.migration.precopy import PreCopyMigration

            migration = PreCopyMigration(
                self.vm,
                destination_host=host,
                destination_port=int(port),
                max_bandwidth=getattr(self.vm, "migration_max_bandwidth", None),
                max_downtime=getattr(self.vm, "migration_max_downtime", None),
            )
        process = migration.start()
        self.vm.migration_process = process
        if detach:
            return ""
        return "migration started"


def _parse_size(text):
    """Parse 32m / 1g / 1048576 size syntax into bytes."""
    text = text.strip().lower()
    multiplier = 1
    if text and text[-1] in "kmg":
        multiplier = {"k": 1024, "m": 1024**2, "g": 1024**3}[text[-1]]
        text = text[:-1]
    try:
        return int(float(text) * multiplier)
    except ValueError as exc:
        raise MonitorError(f"bad size value {text!r}") from exc
