"""The telnet-multiplexed monitor serial port.

``-monitor telnet:127.0.0.1:5555,server,nowait`` makes the monitor
reachable over the network.  The paper's installation opens the victim's
monitor exactly this way ("telnet on the host side could be invoked to
open the VM's QEMU Monitor", §IV-A), so recon and the migration kick-off
can be driven over a real (simulated) connection rather than a Python
method call.
"""

from repro.errors import MonitorError
from repro.sim.process import ChannelClosed

PROMPT = "(qemu) "


class TelnetMonitorServer:
    """Serves a QemuMonitor on a node port, one session per connection."""

    def __init__(self, node, port, monitor):
        self.node = node
        self.port = port
        self.monitor = monitor
        self.engine = node.engine
        self.closed = False
        node.listen(port, handler=self._on_connect)

    def _on_connect(self, connection):
        self.engine.process(
            self._session(connection.server),
            name=f"qemu-monitor:{self.port}",
        )

    def _session(self, endpoint):
        banner = f"QEMU {self.monitor._info_version([])} monitor\n{PROMPT}"
        endpoint.send(banner.encode("ascii"), kind="monitor")
        try:
            while not self.closed:
                packet = yield endpoint.recv()
                command = packet.payload
                if isinstance(command, bytes):
                    command = command.decode("ascii", "replace")
                try:
                    output = self.monitor.execute(command)
                except MonitorError as error:
                    output = f"error: {error}"
                reply = (output + "\n" if output else "") + PROMPT
                endpoint.send(reply.encode("ascii"), kind="monitor")
        except ChannelClosed:
            return

    def close(self):
        if self.closed:
            return
        self.closed = True
        if self.node.listener(self.port) is not None:
            self.node.close_port(self.port)


class TelnetClient:
    """`telnet HOST PORT` — drives a remote monitor from a shell.

    Usage (inside a simulation process)::

        client = TelnetClient(attacker_node, victim_host_node, 5555)
        yield from client.open()
        reply = yield from client.command("info qtree")
    """

    def __init__(self, from_node, to_node, port):
        self.endpoint = from_node.connect(to_node, port)
        self.engine = from_node.engine

    def open(self):
        """Consume the banner; returns it."""
        packet = yield self.endpoint.recv()
        return packet.payload.decode("ascii", "replace")

    def command(self, text):
        """Send one command, return its output (prompt stripped)."""
        self.endpoint.send(text.encode("ascii"), kind="monitor")
        packet = yield self.endpoint.recv()
        reply = packet.payload.decode("ascii", "replace")
        if reply.endswith(PROMPT):
            reply = reply[: -len(PROMPT)]
        return reply.rstrip("\n")

    def close(self):
        self.endpoint.close()
