"""Virtio network device: the guest NIC, its NAT link, and hostfwds.

Creating a :class:`VirtioNic` wires a fresh guest network node to the
VM's host node through a user-mode NAT link and instantiates one
:class:`~repro.net.nat.ForwardRule` per configured hostfwd.  The link's
per-packet cost grows with virtualization depth (device emulation runs
in the parent's userspace), which is measurable but — as in the paper's
Fig 3 — small against wire bandwidth.
"""

from repro.net.nat import ForwardRule
from repro.net.stack import Link, NetworkNode

#: Virtio paravirtual link capacity (vhost-class).
VIRTIO_BANDWIDTH_BPS = 5.0e9
VIRTIO_LATENCY_S = 8.0e-5
#: Userspace packet processing per layer of emulation.
PER_PACKET_COST_PER_DEPTH = 2.5e-6
#: slirp hostfwd splice cost per packet (user networking is userspace).
SPLICE_COST_S = 1.2e-5


class VirtioNic:
    """One -netdev user / -device virtio-net-pci pair."""

    def __init__(self, vm, nic_spec):
        self.vm = vm
        self.spec = nic_spec
        host_node = vm.host_system.net_node
        engine = vm.host_system.engine
        self.guest_node = NetworkNode(engine, f"{vm.name}-{nic_spec.netdev_id}")
        depth = vm.kvm_vm.depth
        self.link = Link(
            host_node,
            self.guest_node,
            bandwidth_bps=VIRTIO_BANDWIDTH_BPS,
            latency_s=VIRTIO_LATENCY_S,
            name=f"{vm.name}-usernet",
            inbound_allowed=False,
            per_packet_cost=PER_PACKET_COST_PER_DEPTH * depth,
        )
        self.forward_rules = []
        for proto, host_port, guest_port in nic_spec.hostfwds:
            rule = ForwardRule(
                host_node,
                host_port,
                self.guest_node,
                guest_port,
                name=f"{vm.name}:{proto}:{host_port}->{guest_port}",
                splice_cost=SPLICE_COST_S,
            )
            self.forward_rules.append(rule)

    def add_hostfwd(self, proto, host_port, guest_port):
        """Add a forward rule at runtime (QEMU's hostfwd_add command)."""
        rule = ForwardRule(
            self.vm.host_system.net_node,
            host_port,
            self.guest_node,
            guest_port,
            name=f"{self.vm.name}:{proto}:{host_port}->{guest_port}",
            splice_cost=SPLICE_COST_S,
        )
        self.forward_rules.append(rule)
        self.spec.hostfwds.append((proto, host_port, guest_port))
        return rule

    def remove_hostfwd(self, proto, host_port):
        """Remove a forward rule by outer port; returns True if found."""
        for index, rule in enumerate(self.forward_rules):
            if rule.outer_port == host_port:
                rule.remove()
                del self.forward_rules[index]
                self.spec.hostfwds = [
                    fwd for fwd in self.spec.hostfwds
                    if not (fwd[0] == proto and fwd[1] == host_port)
                ]
                return True
        return False

    def teardown(self):
        for rule in self.forward_rules:
            rule.remove()
        self.forward_rules.clear()

    def info_line(self):
        """One NIC's portion of `info network`."""
        fwds = ",".join(
            f"hostfwd={proto}::{hp}-:{gp}" for proto, hp, gp in self.spec.hostfwds
        )
        return (
            f"{self.spec.netdev_id}: index=0,type=user,{fwds or 'no-hostfwd'}\n"
            f" \\ {self.spec.model}: "
            f"model={self.spec.model},netdev={self.spec.netdev_id}"
        )
