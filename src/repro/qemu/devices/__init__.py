"""Virtual device models: virtio block, virtio net, serial/monitor."""

from repro.qemu.devices.block import VirtioBlockDevice
from repro.qemu.devices.net import VirtioNic
from repro.qemu.devices.serial import TelnetMonitorServer

__all__ = ["TelnetMonitorServer", "VirtioBlockDevice", "VirtioNic"]
