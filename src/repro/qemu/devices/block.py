"""Virtio block device model.

Tracks the statistics `info blockstats` reports and provides the I/O
service-time model used by I/O-bound workloads (Filebench).  Request
latency has a device component (flash service time) plus the exit costs
already charged by the guest kernel's ``block_io_submit`` profile.
"""

from repro.errors import QemuError

#: Device service time for one 4 KiB request at QD1 (SATA SSD class).
READ_SERVICE_S = 8.0e-5
WRITE_SERVICE_S = 9.0e-5


class VirtioBlockDevice:
    """One virtio-blk disk attached to a VM."""

    def __init__(self, vm, drive_spec, image):
        self.vm = vm
        self.drive_spec = drive_spec
        self.image = image
        self.rd_ops = 0
        self.wr_ops = 0
        self.rd_bytes = 0
        self.wr_bytes = 0
        self.flush_ops = 0

    def read(self, num_pages):
        """Account a read of ``num_pages``; returns device service time."""
        if num_pages < 0:
            raise QemuError("negative read size")
        self.rd_ops += 1
        self.rd_bytes += num_pages * 4096
        return READ_SERVICE_S + max(0, num_pages - 1) * 6.0e-6

    def write(self, num_pages):
        """Account a write of ``num_pages``; returns device service time."""
        if num_pages < 0:
            raise QemuError("negative write size")
        self.wr_ops += 1
        self.wr_bytes += num_pages * 4096
        return WRITE_SERVICE_S + max(0, num_pages - 1) * 7.0e-6

    def flush(self):
        self.flush_ops += 1
        return 2.2e-4

    def blockstats_line(self, index):
        """One device's line of `info blockstats`."""
        name = f"virtio{index}" if self.drive_spec.interface == "virtio" else f"ide{index}"
        return (
            f"{name}: rd_bytes={self.rd_bytes} wr_bytes={self.wr_bytes} "
            f"rd_operations={self.rd_ops} wr_operations={self.wr_ops} "
            f"flush_operations={self.flush_ops}"
        )
