"""Dirty-page tracking for live migration.

A thin, testable façade over the guest memory's dirty log that adds the
rate estimation pre-copy needs for its convergence decision.
"""


class DirtyTracker:
    """Tracks writes to one guest memory across migration iterations."""

    def __init__(self, memory, engine):
        self.memory = memory
        self.engine = engine
        self._last_sync = engine.now
        self.last_dirty_pages = 0
        self.last_rate_pages_per_s = 0.0

    def start(self):
        self.memory.start_dirty_log()
        self._last_sync = self.engine.now

    def sync(self):
        """Collect pages dirtied since the last sync.

        Returns ``(dirty_gpfns, bulk_dirty_pages)`` and updates the
        observed dirty rate.
        """
        dirty, bulk = self.memory.fetch_and_reset_dirty()
        now = self.engine.now
        elapsed = now - self._last_sync
        self._last_sync = now
        self.last_dirty_pages = len(dirty) + bulk
        if elapsed > 0:
            self.last_rate_pages_per_s = self.last_dirty_pages / elapsed
        return dirty, bulk

    def stop(self):
        self.memory.stop_dirty_log()
