"""Dirty-page tracking for live migration.

Two pieces:

* :class:`DirtyBitmap` — an int-backed bitmap over page numbers (one
  64-page word per dict slot), the representation KVM's dirty log
  actually uses.  Guest memories mark writes directly into a word dict;
  draining the log wraps those words into a ``DirtyBitmap``, which
  supports the membership / count / sorted-iteration operations the
  pre-copy loop needs — word-wise, without materializing a per-page
  set.
* :class:`DirtyTracker` — a thin, testable façade over the guest
  memory's dirty log that adds the rate estimation pre-copy needs for
  its convergence decision.
"""

WORD_SHIFT = 6
WORD_BITS = 1 << WORD_SHIFT

#: All 64 bits set — the fully-dirty word bulk transfers produce.
_FULL_WORD = (1 << WORD_BITS) - 1
#: byte value -> tuple of set bit positions, precomputed once so the
#: word scan peels whole bytes through a table lookup instead of a
#: per-bit Python loop.
_BYTE_PAGES = tuple(
    tuple(bit for bit in range(8) if (value >> bit) & 1)
    for value in range(256)
)


class DirtyBitmap:
    """A set of page numbers stored as 64-bit words.

    ``words`` maps ``pfn >> 6`` to an int whose bit ``pfn & 63`` marks
    the page dirty.  Iteration and :meth:`page_list` yield pages in
    ascending order, which is what the migration stream relies on for
    deterministic chunking.
    """

    __slots__ = ("words", "_count")

    def __init__(self, words=None):
        self.words = {} if words is None else words
        self._count = None

    def mark(self, pfn):
        words = self.words
        word_index = pfn >> WORD_SHIFT
        words[word_index] = words.get(word_index, 0) | (1 << (pfn & 63))
        self._count = None

    def discard(self, pfn):
        word_index = pfn >> WORD_SHIFT
        word = self.words.get(word_index)
        if word is None:
            return
        word &= ~(1 << (pfn & 63))
        if word:
            self.words[word_index] = word
        else:
            del self.words[word_index]
        self._count = None

    def clear(self):
        self.words.clear()
        self._count = None

    def __deepcopy__(self, memo):
        # Words map int -> int, so a shallow dict copy is an exact deep
        # copy; skipping the generic reduce path keeps engine snapshot
        # forks (repro.sim.snapshot) from walking every word object.
        clone = DirtyBitmap(dict(self.words))
        clone._count = self._count
        memo[id(self)] = clone
        return clone

    def __contains__(self, pfn):
        word = self.words.get(pfn >> WORD_SHIFT)
        return word is not None and (word >> (pfn & 63)) & 1 == 1

    def __len__(self):
        n = self._count
        if n is None:
            n = self._count = sum(w.bit_count() for w in self.words.values())
        return n

    def __iter__(self):
        return iter(self.page_list())

    def __bool__(self):
        return bool(self.words) and len(self) > 0

    def page_list(self):
        """Ascending list of dirty page numbers, word-wise.

        Visits each populated word once.  A fully-set word (the shape
        bulk writes produce) expands as one C-level ``range`` extend;
        anything else is peeled byte-at-a-time through the precomputed
        bit-position table, so the per-page Python loop only ever runs
        over the set bits of non-zero bytes.
        """
        pages = []
        extend = pages.extend
        words = self.words
        byte_pages = _BYTE_PAGES
        for word_index in sorted(words):
            bits = words[word_index]
            base = word_index << WORD_SHIFT
            if bits == _FULL_WORD:
                extend(range(base, base + WORD_BITS))
                continue
            for byte_offset, byte in enumerate(bits.to_bytes(8, "little")):
                if byte:
                    start = base + (byte_offset << 3)
                    extend(start + bit for bit in byte_pages[byte])
        return pages

    def __repr__(self):
        return f"<DirtyBitmap pages={len(self)} words={len(self.words)}>"


class DirtyTracker:
    """Tracks writes to one guest memory across migration iterations."""

    def __init__(self, memory, engine):
        self.memory = memory
        self.engine = engine
        self._last_sync = engine.now
        self.last_dirty_pages = 0
        self.last_rate_pages_per_s = 0.0

    def start(self):
        self.memory.start_dirty_log()
        self._last_sync = self.engine.now

    def sync(self):
        """Collect pages dirtied since the last sync.

        Returns ``(dirty_bitmap, bulk_dirty_pages)`` and updates the
        observed dirty rate.
        """
        dirty, bulk = self.memory.fetch_and_reset_dirty()
        now = self.engine.now
        elapsed = now - self._last_sync
        self._last_sync = now
        self.last_dirty_pages = len(dirty) + bulk
        if elapsed > 0:
            self.last_rate_pages_per_s = self.last_dirty_pages / elapsed
        return dirty, bulk

    def stop(self):
        self.memory.stop_dirty_log()
