"""Migration statistics — what `info migrate` reports."""


class MigrationStats:
    """Counters for one migration attempt."""

    def __init__(self, engine):
        self._engine = engine
        self.status = "setup"
        self.started_at = engine.now
        self.finished_at = None
        self.downtime = 0.0
        self.ram_bytes = 0
        self.pages_transferred = 0
        self.zero_pages = 0
        #: Pages shipped as chunk-local back-references instead of full
        #: content (capability ``dedup``).
        self.pages_deduped = 0
        self.iterations = 0
        self.throttle_percentage = 0
        self.failure_reason = None

    @property
    def total_time(self):
        """End-to-end seconds (running total while active)."""
        end = self.finished_at if self.finished_at is not None else self._engine.now
        return end - self.started_at

    @property
    def throughput_mbps(self):
        elapsed = self.total_time
        if elapsed <= 0:
            return 0.0
        return self.ram_bytes * 8.0 / elapsed / 1e6

    def complete(self):
        self.status = "completed"
        self.finished_at = self._engine.now

    def fail(self, reason):
        self.status = "failed"
        self.failure_reason = str(reason)
        self.finished_at = self._engine.now

    def monitor_text(self):
        """`info migrate` formatting."""
        lines = [
            "capabilities: xbzrle: off auto-converge: on",
            f"Migration status: {self.status}",
            f"total time: {int(self.total_time * 1000)} milliseconds",
            f"downtime: {int(self.downtime * 1000)} milliseconds",
            f"transferred ram: {self.ram_bytes // 1024} kbytes",
            f"throughput: {self.throughput_mbps:.2f} mbps",
            f"normal pages: {self.pages_transferred}",
            f"duplicate (zero) pages: {self.zero_pages}",
            f"dirty sync count: {self.iterations}",
            f"cpu throttle percentage: {self.throttle_percentage}",
        ]
        if self.pages_deduped:
            lines.insert(8, f"deduplicated pages: {self.pages_deduped}")
        if self.failure_reason:
            lines.append(f"error: {self.failure_reason}")
        return "\n".join(lines)

    def __repr__(self):
        return (
            f"<MigrationStats {self.status} t={self.total_time:.2f}s "
            f"iters={self.iterations}>"
        )
