"""Live migration: pre-copy (the paper's mechanism) and post-copy.

The end-to-end time of a pre-copy migration — Fig 4's metric — is an
emergent quantity here: it falls out of the interplay between the
guest's dirty-page rate (workload-dependent), the migration bandwidth
cap (QEMU's 32 MiB/s default unless ``migrate_set_speed`` raised it),
the destination's page-application cost (which grows with nesting
depth), and the auto-converge CPU throttle that QEMU applies when the
dirty rate outruns the link.
"""

from repro.migration.postcopy import PostCopyMigration
from repro.migration.precopy import MigrationDestination, PreCopyMigration
from repro.migration.stats import MigrationStats
from repro.migration.transport import Complete, DeviceState, RamChunk

__all__ = [
    "Complete",
    "DeviceState",
    "MigrationDestination",
    "MigrationStats",
    "PostCopyMigration",
    "PreCopyMigration",
    "RamChunk",
]
