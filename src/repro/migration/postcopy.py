"""Post-copy live migration.

The paper uses pre-copy but notes (§II-A) that "the rootkit technique
... applies to both migration approaches"; this module exists to back
that claim with a working implementation and an ablation benchmark.

Post-copy inverts the trade-off: the guest switches over almost
immediately (tiny, workload-independent downtime), then runs at the
destination while its pages stream in — paying an expected remote-fault
latency on every operation that shrinks as residency grows.  Total
migration time becomes workload-independent (no convergence loop), at
the price of degraded guest performance during the fill.
"""

from repro.errors import MigrationError
from repro.migration.precopy import SCAN_COST_PER_PAGE
from repro.migration.stats import MigrationStats
from repro.migration.transport import (
    ACK_BYTES,
    Ack,
    DeviceState,
    RamChunk,
    dedup_entries,
)
from repro.net.packets import Packet

#: Round-trip latency of one remote page fault (userfaultfd + network).
REMOTE_FAULT_RTT = 3.5e-4
#: Fraction of guest operations that touch a not-yet-resident page when
#: residency is zero (working-set locality keeps this well under 1).
FAULT_TOUCH_RATE = 0.18
DEFAULT_POSTCOPY_BANDWIDTH = 32 * 1024 * 1024
CHUNK_PAGES = 1024


class PostCopyHandoff:
    """Control message: switch over now, pages to follow."""

    __slots__ = ("guest_system", "alloc_floor", "total_pages")

    def __init__(self, guest_system, alloc_floor, total_pages):
        self.guest_system = guest_system
        self.alloc_floor = alloc_floor
        self.total_pages = total_pages


class PostCopyDone:
    """Control message: every page is resident."""

    __slots__ = ()


class PostCopyMigration:
    """Source side of a post-copy migration.

    The destination must be a :class:`PostCopyDestination` (launch the
    incoming VM with ``start_incoming=False`` and attach one, or use
    :func:`repro.core.rootkit.installer` helpers that pick the right
    mode).
    """

    def __init__(
        self, vm, destination_port, max_bandwidth=None, destination_node=None
    ):
        if vm.guest is None:
            raise MigrationError(f"{vm.name}: no guest to migrate")
        self.vm = vm
        self.engine = vm.engine
        self.destination_port = destination_port
        #: Cross-host migration: the destination's NetworkNode (None =
        #: same-host loopback, as the monitor's tcp:127.0.0.1 URI).
        self.destination_node = destination_node
        self.max_bandwidth = max_bandwidth or DEFAULT_POSTCOPY_BANDWIDTH
        #: Capability ``dedup``: same in-chunk content collapsing as the
        #: pre-copy path (the fill stream benefits identically).
        self.dedup = bool(
            getattr(vm, "migration_capabilities", {}).get("dedup", False)
        )
        self.stats = MigrationStats(self.engine)
        #: True once the destination has acked the handoff — past this
        #: point the guest runs remotely, so a fill failure degrades the
        #: destination guest rather than rolling back to the source.
        self.switched_over = False
        vm.migration_stats = self.stats

    def start(self):
        return self.engine.process(
            self._run(), name=f"postcopy:{self.vm.name}"
        )

    def _run(self):
        vm = self.vm
        memory = vm.kvm_vm.memory
        node = vm.host_system.net_node
        target = self.destination_node if self.destination_node is not None else node
        try:
            endpoint = node.connect(target, self.destination_port)
        except Exception as error:
            self.stats.fail(error)
            raise MigrationError(
                f"cannot reach migration destination port "
                f"{self.destination_port}: {error}"
            ) from error
        self.stats.status = "active"
        run_started = self.engine.now
        trace_track = f"migrate:{vm.name}"
        tracer = self.engine.tracer

        # Immediate switchover: device state + guest handoff.
        downtime_start = self.engine.now
        vm.pause()
        device_state = DeviceState()
        yield endpoint.send(
            Packet(device_state.size_bytes, payload=device_state, kind="migration")
        )
        guest = vm.guest
        vm.guest = None
        handoff = PostCopyHandoff(
            guest_system=guest,
            alloc_floor=memory._next_alloc,
            total_pages=memory.touched_pages + memory.bulk_touched,
        )
        yield endpoint.send(Packet(128, payload=handoff, kind="migration"))
        yield self._expect_ack(endpoint)
        self.switched_over = True
        self.stats.downtime = self.engine.now - downtime_start
        if tracer.enabled:
            tracer.complete(
                "migration.switchover",
                "migration",
                downtime_start,
                track=trace_track,
                args={"downtime": self.stats.downtime},
            )
        fill_started = self.engine.now

        # Background page push (the guest is already running remotely).
        real_pages = list(memory.iter_touched())
        bulk_total = memory.bulk_touched
        zero_total = memory.untracked_pages
        perf = self.engine.perf
        faults = self.engine.faults
        index = 0
        chunk_index = 0
        remaining_bulk = bulk_total
        remaining_zero = zero_total
        while index < len(real_pages) or remaining_bulk or remaining_zero:
            chunk_index += 1
            if faults is not None:
                try:
                    faults.on_postcopy_chunk(self, chunk_index)
                except MigrationError as error:
                    # Fill transport died after switchover: the guest
                    # keeps running at the destination with the residual
                    # remote-fault penalty of its missing pages.  The
                    # orchestrator re-homes the tenant as degraded.
                    self.stats.fail(error)
                    endpoint.close()
                    if tracer.enabled:
                        tracer.instant(
                            "migration.postcopy_aborted",
                            "migration",
                            track=trace_track,
                            args={"chunk": chunk_index, "error": str(error)},
                        )
                    raise
            batch = real_pages[index : index + CHUNK_PAGES]
            index += len(batch)
            room = CHUNK_PAGES - len(batch)
            bulk_now = min(remaining_bulk, room)
            remaining_bulk -= bulk_now
            zero_now = min(remaining_zero, max((room - bulk_now) * 64, 0))
            remaining_zero -= zero_now
            entries = memory.read_many(batch)
            dedup_table = ()
            if self.dedup and entries:
                unique, table = dedup_entries(entries)
                if table:
                    entries = unique
                    dedup_table = table
                    self.stats.pages_deduped += len(table)
                    perf.migration_pages_deduped += len(table)
            chunk = RamChunk(
                entries,
                bulk_pages=bulk_now,
                zero_pages=zero_now,
                dedup_table=dedup_table,
            )
            pace = self.engine.timeout(chunk.wire_bytes / self.max_bandwidth)
            delivery = endpoint.send(
                Packet(chunk.wire_bytes, payload=chunk, kind="migration")
            )
            yield self.engine.all_of([pace, delivery])
            yield self._expect_ack(endpoint)
            self.stats.ram_bytes += chunk.wire_bytes
            self.stats.pages_transferred += chunk.page_count
            self.stats.zero_pages += zero_now
            self.stats.iterations = 1
            perf.migration_chunks += 1
            perf.migration_pages += chunk.page_count

        yield endpoint.send(Packet(32, payload=PostCopyDone(), kind="migration"))
        yield self._expect_ack(endpoint)
        vm.status = "postmigrate"
        self.stats.complete()
        endpoint.close()
        if tracer.enabled:
            tracer.complete(
                "migration.postcopy_fill",
                "migration",
                fill_started,
                track=trace_track,
                args={
                    "ram_bytes": self.stats.ram_bytes,
                    "pages": self.stats.pages_transferred,
                },
            )
            tracer.complete(
                "migration.postcopy",
                "migration",
                run_started,
                track=trace_track,
                args={
                    "ram_bytes": self.stats.ram_bytes,
                    "pages": self.stats.pages_transferred,
                    "downtime": self.stats.downtime,
                },
            )
            tracer.metrics.counter("migration.completed", mode="postcopy").inc()
            tracer.metrics.histogram("migration.downtime_ms").record(
                self.stats.downtime * 1e3
            )
        return self.stats

    def _expect_ack(self, endpoint):
        return endpoint.recv()


class PostCopyDestination:
    """Receive side of a post-copy migration."""

    def __init__(self, vm, port):
        self.vm = vm
        self.port = port
        self.engine = vm.engine
        self.node = vm.host_system.net_node
        self.listener = self.node.listen(port)
        self.completed = False

    def start(self):
        return self.engine.process(
            self._run(), name=f"postcopy-in:{self.vm.name}:{self.port}"
        )

    def _run(self):
        from repro.hypervisor.exits import ExitReason
        from repro.sim.process import ChannelClosed

        try:
            result = yield from self._run_inner(ExitReason)
            return result
        except ChannelClosed:
            # The fill stream died after switchover: keep the adopted
            # guest (it runs with the residual remote-fault penalty) or,
            # if the handoff never arrived, exit like `qemu -incoming`.
            if self.vm.guest is None:
                self.vm.quit()
            if self.node.listener(self.port) is not None:
                self.node.close_port(self.port)
            return None

    def _run_inner(self, ExitReason):
        connection = yield self.listener.accept()
        endpoint = connection.server
        memory = self.vm.kvm_vm.memory
        depth = self.vm.kvm_vm.depth
        cost_model = self.vm.host_system.cost_model
        guest = None
        total_pages = 1
        received_pages = 0
        while True:
            packet = yield endpoint.recv()
            payload = packet.payload
            if isinstance(payload, DeviceState):
                yield self.engine.timeout(2.0e-3)
            elif isinstance(payload, PostCopyHandoff):
                memory._next_alloc = max(memory._next_alloc, payload.alloc_floor)
                guest = payload.guest_system
                total_pages = max(payload.total_pages, 1)
                self.vm.adopt_guest(guest)
                self._update_fault_penalty(guest, received_pages, total_pages)
                endpoint.send(Packet(ACK_BYTES, payload=Ack(), kind="migration"))
            elif isinstance(payload, RamChunk):
                cost = 0.0
                for gpfn, content in payload.entries:
                    outcome = memory.write(gpfn, content)
                    cost += cost_model.write_outcome_cost(outcome, depth)
                if payload.dedup_table:
                    entries = payload.entries
                    for gpfn, idx in payload.dedup_table:
                        outcome = memory.write(gpfn, entries[idx][1])
                        cost += cost_model.write_outcome_cost(outcome, depth)
                if payload.bulk_pages:
                    memory.touch_bulk(payload.bulk_pages)
                    cost += payload.bulk_pages * (
                        cost_model.minor_fault_cost
                        + cost_model.exit_cost(ExitReason.EPT_VIOLATION, depth)
                    )
                cost += payload.zero_pages * SCAN_COST_PER_PAGE
                if cost > 0:
                    yield self.engine.timeout(cost)
                received_pages += payload.page_count
                if guest is not None:
                    self._update_fault_penalty(guest, received_pages, total_pages)
                endpoint.send(Packet(ACK_BYTES, payload=Ack(), kind="migration"))
            elif isinstance(payload, PostCopyDone):
                if guest is not None:
                    guest.kernel.extra_op_latency = 0.0
                endpoint.send(Packet(ACK_BYTES, payload=Ack(), kind="migration"))
                break
            else:
                raise MigrationError(f"unexpected postcopy payload {payload!r}")
        self.node.close_port(self.port)
        self.completed = True
        return self.vm

    @staticmethod
    def _update_fault_penalty(guest, received_pages, total_pages):
        missing_fraction = max(0.0, 1.0 - received_pages / total_pages)
        guest.kernel.extra_op_latency = (
            FAULT_TOUCH_RATE * missing_fraction * REMOTE_FAULT_RTT
        )
