"""Pre-copy live migration: iterative copy, convergence, auto-converge.

Source-side algorithm (QEMU's ram_save path):

1. enable dirty logging, send every page (materialized pages with real
   content, bulk pages by count, never-touched pages as zero markers);
2. repeatedly sync the dirty log and re-send what changed while the
   guest keeps running;
3. when the remaining dirty set can be sent within ``max_downtime`` at
   the measured throughput, stop the guest, send the final set plus
   device state, and hand the guest over;
4. when the dirty rate refuses to converge, ratchet the auto-converge
   CPU throttle (initial 20%, +10% per stall, max 99%) — this is what
   lets the CPU-intensive case of Fig 4 finish at all, and what makes
   it take minutes instead of seconds.

The destination applies pages with *real* writes into its guest memory,
so a nested destination pays genuine nested-EPT costs per page — the
emergent source of the L0-L1 slowdown in Fig 4.
"""

from repro.errors import MigrationError
from repro.hypervisor.exits import ExitReason
from repro.migration.dirty_tracking import DirtyTracker
from repro.migration.stats import MigrationStats
from repro.migration.transport import (
    ACK_BYTES,
    Ack,
    Complete,
    DeviceState,
    RamChunk,
    dedup_entries,
)
from repro.net.packets import Packet

#: QEMU's historical default migration bandwidth cap (migrate_set_speed).
DEFAULT_MAX_BANDWIDTH = 32 * 1024 * 1024
#: QEMU's default allowed downtime.
DEFAULT_MAX_DOWNTIME = 0.30
#: Pages per RAM chunk (one flow-controlled message).
CHUNK_PAGES = 1024
#: Auto-converge schedule (QEMU: x-cpu-throttle-initial/-increment).
THROTTLE_INITIAL = 0.20
THROTTLE_INCREMENT = 0.10
THROTTLE_MAX = 0.99
#: Source-side scan cost per page per iteration (dirty bitmap + zero scan).
SCAN_COST_PER_PAGE = 1.2e-7


class PreCopyMigration:
    """The source side of one pre-copy migration."""

    def __init__(
        self,
        vm,
        destination_host="127.0.0.1",
        destination_port=4444,
        max_bandwidth=None,
        max_downtime=None,
        chunk_pages=CHUNK_PAGES,
        destination_node=None,
    ):
        if vm.guest is None:
            raise MigrationError(f"{vm.name}: no guest to migrate")
        self.vm = vm
        self.engine = vm.engine
        self.destination_host = destination_host
        self.destination_port = destination_port
        #: Cross-host migration: the destination's NetworkNode.  None
        #: keeps QEMU's same-host loopback behaviour (tcp:127.0.0.1).
        self.destination_node = destination_node
        self.max_bandwidth = max_bandwidth or DEFAULT_MAX_BANDWIDTH
        self.max_downtime = max_downtime or DEFAULT_MAX_DOWNTIME
        self.chunk_pages = chunk_pages
        #: QEMU capability: delta-encode resent pages against a sender
        #: cache (``migrate_set_capability xbzrle on``).
        self.xbzrle = bool(
            getattr(vm, "migration_capabilities", {}).get("xbzrle", False)
        )
        #: XBZRLE cache-hit probability for a resent page (pages that
        #: changed beyond recognition miss and ship in full).
        self.xbzrle_hit_ratio = 0.85
        #: Capability ``dedup``: collapse identical page contents within
        #: a chunk to one copy plus back-references.  KSM-heavy tenants
        #: (many pages interned to the same record) migrate in a
        #: fraction of the wire bytes; the destination still performs
        #: every per-page write, so fault accounting is unchanged.
        self.dedup = bool(
            getattr(vm, "migration_capabilities", {}).get("dedup", False)
        )
        self._pages_sent_before = set()
        self._bulk_sent_once = False
        self.xbzrle_pages = 0
        self.stats = MigrationStats(self.engine)
        self.cancelled = False
        self._switchover_started = False
        self._process = None
        self._tracker = None
        self._endpoint = None
        vm.migration_stats = self.stats
        vm.active_migration = self

    def start(self):
        """Kick off the migration; returns the engine Process."""
        self._process = self.engine.process(
            self._run(), name=f"migrate:{self.vm.name}"
        )
        return self._process

    def cancel(self):
        """`migrate_cancel`: abort and leave the source guest running.

        Refused (returns False) once the stop-and-copy switchover has
        begun — past that point the guest's ownership is in flight,
        exactly as in QEMU.
        """
        if self._switchover_started or self.stats.status in (
            "completed",
            "cancelled",
            "failed",
        ):
            return False
        if self._process is not None and self._process.is_alive:
            self._process.interrupt("migrate_cancel")
        return True

    # -- main loop ---------------------------------------------------------

    def _run(self):
        from repro.sim.engine import Interrupt

        try:
            result = yield from self._run_inner()
            return result
        except Interrupt:
            self._cleanup_after_cancel()
            return self.stats
        except MigrationError as error:
            self._abort(error)
            raise

    def _cleanup_after_cancel(self):
        """Roll back to a running guest: QEMU's cancel semantics."""
        self.cancelled = True
        vm = self.vm
        if self._tracker is not None:
            self._tracker.stop()
        if vm.guest is not None:
            vm.guest.kernel.cpu_throttle = 0.0
        vm.resume()
        vm.status = "running"
        self.stats.status = "cancelled"
        self.stats.finished_at = self.engine.now
        if self._endpoint is not None:
            self._endpoint.close()
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.instant(
                "migration.cancelled",
                "migration",
                track=f"migrate:{vm.name}",
                args={"iterations": self.stats.iterations},
            )

    def _abort(self, error):
        """Roll back a mid-stream failure to a running source guest.

        Unlike :meth:`_cleanup_after_cancel` this runs on the error
        path, so it must leave the VM retryable: tracker stopped,
        throttle cleared, endpoint closed — the orchestrator relaunches
        the destination and calls ``start()`` on a fresh instance.
        """
        vm = self.vm
        if self._tracker is not None:
            self._tracker.stop()
        if vm.guest is not None:
            vm.guest.kernel.cpu_throttle = 0.0
            vm.resume()
            vm.status = "running"
        if self.stats.status != "failed":
            self.stats.fail(error)
        if self._endpoint is not None:
            self._endpoint.close()
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.instant(
                "migration.aborted",
                "migration",
                track=f"migrate:{vm.name}",
                args={"iterations": self.stats.iterations, "error": str(error)},
            )

    def _run_inner(self):
        vm = self.vm
        memory = vm.kvm_vm.memory
        tracker = DirtyTracker(memory, self.engine)
        self._tracker = tracker
        node = vm.host_system.net_node
        target = self.destination_node if self.destination_node is not None else node
        try:
            endpoint = node.connect(target, self.destination_port)
        except Exception as error:
            self.stats.fail(error)
            raise MigrationError(
                f"cannot reach migration destination port "
                f"{self.destination_port}: {error}"
            ) from error
        self._endpoint = endpoint

        self.stats.status = "active"
        tracker.start()
        run_started = self.engine.now
        trace_track = f"migrate:{vm.name}"
        tracer = self.engine.tracer

        faults = self.engine.faults

        # ---- iteration 1: everything -----------------------------------
        if faults is not None:
            faults.on_precopy_iteration(self, 1)
        all_real = list(memory.iter_touched())
        bulk_total = memory.bulk_touched
        zero_total = memory.untracked_pages
        iter_started = self.engine.now
        iter_bytes = yield from self._send_pages(
            endpoint, memory, all_real, bulk_total, zero_total
        )
        self.stats.iterations += 1
        if tracer.enabled:
            tracer.complete(
                "migration.iteration",
                "migration",
                iter_started,
                track=trace_track,
                args={
                    "iteration": self.stats.iterations,
                    "bytes": iter_bytes,
                    "pages": len(all_real) + bulk_total + zero_total,
                },
            )
        measured_rate = self._measured_rate(iter_bytes, iter_started)
        self._bulk_sent_once = True

        # ---- convergence loop -------------------------------------------
        throttle = 0.0
        stall_count = 0
        previous_dirty = None
        while True:
            dirty, bulk_dirty = tracker.sync()
            dirty_pages = len(dirty) + bulk_dirty
            dirty_bytes = dirty_pages * 4104
            if dirty_bytes <= self.max_downtime * measured_rate:
                break
            # QEMU auto-converge: the throttle ratchets only after TWO
            # consecutive iterations whose dirty set refused to shrink
            # (mig_throttle_guest_down fires at dirty_rate_high_cnt >= 2).
            if previous_dirty is not None and dirty_pages > 0.85 * previous_dirty:
                stall_count += 1
                if stall_count >= 2:
                    stall_count = 0
                    throttle = (
                        THROTTLE_INITIAL
                        if throttle == 0.0
                        else min(throttle + THROTTLE_INCREMENT, THROTTLE_MAX)
                    )
                    vm.guest.kernel.cpu_throttle = throttle
                    self.stats.throttle_percentage = int(throttle * 100)
            else:
                stall_count = 0
            previous_dirty = dirty_pages
            if faults is not None:
                faults.on_precopy_iteration(self, self.stats.iterations + 1)
            iter_started = self.engine.now
            iter_bytes = yield from self._send_pages(
                endpoint, memory, dirty.page_list(), bulk_dirty, 0
            )
            self.stats.iterations += 1
            if tracer.enabled:
                tracer.complete(
                    "migration.iteration",
                    "migration",
                    iter_started,
                    track=trace_track,
                    args={
                        "iteration": self.stats.iterations,
                        "bytes": iter_bytes,
                        "pages": dirty_pages,
                        "throttle": self.stats.throttle_percentage,
                    },
                )
            measured_rate = self._measured_rate(
                iter_bytes, iter_started, fallback=measured_rate
            )

        # ---- stop-and-copy ----------------------------------------------
        self._switchover_started = True
        downtime_start = self.engine.now
        vm.pause()
        dirty, bulk_dirty = tracker.sync()
        yield from self._send_pages(
            endpoint, memory, dirty.page_list(), bulk_dirty, 0
        )
        self.stats.iterations += 1
        device_state = DeviceState()
        yield endpoint.send(
            Packet(device_state.size_bytes, payload=device_state, kind="migration")
        )
        yield self._expect_ack(endpoint)

        guest = vm.guest
        guest.kernel.cpu_throttle = 0.0
        handoff = Complete(
            guest_system=guest,
            alloc_floor=memory._next_alloc,
            bulk_pages_total=memory.bulk_touched,
        )
        vm.guest = None
        yield endpoint.send(Packet(128, payload=handoff, kind="migration"))
        yield self._expect_ack(endpoint)
        self.stats.downtime = self.engine.now - downtime_start

        tracker.stop()
        vm.status = "postmigrate"
        self.stats.complete()
        endpoint.close()
        if tracer.enabled:
            tracer.complete(
                "migration.stop_and_copy",
                "migration",
                downtime_start,
                track=trace_track,
                args={"downtime": self.stats.downtime},
            )
            tracer.complete(
                "migration.precopy",
                "migration",
                run_started,
                track=trace_track,
                args={
                    "iterations": self.stats.iterations,
                    "ram_bytes": self.stats.ram_bytes,
                    "pages": self.stats.pages_transferred,
                    "zero_pages": self.stats.zero_pages,
                    "downtime": self.stats.downtime,
                },
            )
            tracer.metrics.counter("migration.completed", mode="precopy").inc()
            tracer.metrics.histogram("migration.downtime_ms").record(
                self.stats.downtime * 1e3
            )
        return self.stats

    # -- helpers -----------------------------------------------------------

    def _measured_rate(self, iter_bytes, iter_started, fallback=None):
        """Observed stream throughput of the last iteration (bytes/s).

        An empty iteration carries no signal, so the previous estimate
        (or the configured cap) is reused.
        """
        elapsed = self.engine.now - iter_started
        if iter_bytes <= 0 or elapsed <= 0:
            return fallback if fallback is not None else float(self.max_bandwidth)
        return iter_bytes / elapsed

    def _send_pages(self, endpoint, memory, gpfns, bulk_pages, zero_pages):
        """Send a page population in flow-controlled chunks.

        Returns the wire bytes sent.  Each chunk waits for: its own
        serialization at the bandwidth cap, the network delivery, and
        the destination's ACK — so destination application cost
        backpressures the stream exactly like a real TCP window.
        """
        sent_bytes = 0
        total_pages = len(gpfns) + bulk_pages + zero_pages
        scan_cost = total_pages * SCAN_COST_PER_PAGE
        if scan_cost > 0:
            yield self.engine.timeout(scan_cost)

        perf = self.engine.perf
        sent_before = self._pages_sent_before
        index = 0
        remaining_bulk = bulk_pages
        remaining_zero = zero_pages
        while index < len(gpfns) or remaining_bulk > 0 or remaining_zero > 0:
            batch = gpfns[index : index + self.chunk_pages]
            index += len(batch)
            room = self.chunk_pages - len(batch)
            bulk_now = min(remaining_bulk, room)
            remaining_bulk -= bulk_now
            room -= bulk_now
            zero_now = min(remaining_zero, max(room * 64, 0))
            remaining_zero -= zero_now
            entries = memory.read_many(batch)
            dedup_table = ()
            if self.dedup and entries:
                unique, table = dedup_entries(entries)
                if table:
                    entries = unique
                    dedup_table = table
                    self.stats.pages_deduped += len(table)
                    perf.migration_pages_deduped += len(table)
            xbzrle_now = 0
            if self.xbzrle:
                # Chunk-local set intersection instead of a per-gpfn
                # membership loop against the full sent-pages set.
                # With dedup active only the pages still shipping in
                # full are candidates for delta encoding.
                if dedup_table:
                    resent = len(
                        sent_before.intersection(
                            [gpfn for gpfn, _ in entries]
                        )
                    )
                else:
                    resent = len(sent_before.intersection(batch))
                if self._bulk_sent_once:
                    resent += bulk_now
                xbzrle_now = int(resent * self.xbzrle_hit_ratio)
                self.xbzrle_pages += xbzrle_now
            sent_before.update(batch)
            chunk = RamChunk(
                entries,
                bulk_pages=bulk_now,
                zero_pages=zero_now,
                xbzrle_pages=xbzrle_now,
                dedup_table=dedup_table,
            )
            packet = Packet(chunk.wire_bytes, payload=chunk, kind="migration")
            # QEMU's rate limiter counts bytes written to the socket per
            # window, and the blocking write doesn't return until the
            # receiver has drained its (one-chunk) buffer — so pacing,
            # wire serialization, and destination page application
            # serialize rather than overlap.
            yield self.engine.timeout(chunk.wire_bytes / self.max_bandwidth)
            yield endpoint.send(packet)
            yield self._expect_ack(endpoint)
            sent_bytes += chunk.wire_bytes
            self.stats.ram_bytes += chunk.wire_bytes
            self.stats.pages_transferred += chunk.page_count
            self.stats.zero_pages += zero_now
            perf.migration_chunks += 1
            perf.migration_pages += chunk.page_count
        return sent_bytes

    def _expect_ack(self, endpoint):
        ack_event = endpoint.recv()

        def _check(event):
            if event.ok and not isinstance(event.value.payload, Ack):
                raise MigrationError(
                    f"protocol error: expected Ack, got {event.value.payload!r}"
                )

        ack_event.callbacks.append(_check)
        return ack_event


class MigrationDestination:
    """The receive side: an ``-incoming tcp:0:PORT`` QEMU.

    Protocol-agnostic, like real QEMU: the stream itself announces
    whether the source runs pre-copy (RAM first, switchover last) or
    post-copy (switchover first, RAM streamed behind) — a post-copy
    stream opens with device state + handoff before any RAM arrives.
    """

    def __init__(self, vm, port):
        self.vm = vm
        self.port = port
        self.engine = vm.engine
        self.node = vm.host_system.net_node
        self.listener = self.node.listen(port)
        self.completed = False
        self.mode = None  # "precopy" | "postcopy", set by the stream

    def start(self):
        return self.engine.process(
            self._run(), name=f"incoming:{self.vm.name}:{self.port}"
        )

    def _run(self):
        from repro.sim.engine import Interrupt
        from repro.sim.process import ChannelClosed

        try:
            connection = yield self.listener.accept()
            endpoint = connection.server
            memory = self.vm.kvm_vm.memory
            depth = self.vm.kvm_vm.depth
            cost_model = self.vm.host_system.cost_model
            yield from self._receive_loop(endpoint, memory, depth, cost_model)
        except (ChannelClosed, Interrupt):
            # Stream broke before completion (source cancelled or
            # crashed), or the orchestrator tore this attempt down while
            # we were still parked on accept(): a real `qemu -incoming`
            # process exits either way.
            if self.vm.guest is None:
                self.vm.quit()
            if self.node.listener(self.port) is not None:
                self.node.close_port(self.port)
            return None
        self.node.close_port(self.port)
        self.completed = True
        return self.vm

    def _receive_loop(self, endpoint, memory, depth, cost_model):
        from repro.migration.postcopy import PostCopyDone, PostCopyHandoff

        guest = None
        postcopy_total = 1
        postcopy_received = 0
        while True:
            packet = yield endpoint.recv()
            payload = packet.payload
            if isinstance(payload, RamChunk):
                if self.mode is None:
                    self.mode = "precopy"
                cost = self._apply_chunk(memory, payload, depth, cost_model)
                if cost > 0:
                    yield self.engine.timeout(cost)
                if self.mode == "postcopy" and guest is not None:
                    postcopy_received += payload.page_count
                    self._postcopy_penalty(
                        guest, postcopy_received, postcopy_total
                    )
                endpoint.send(Packet(ACK_BYTES, payload=Ack(), kind="migration"))
            elif isinstance(payload, DeviceState):
                yield self.engine.timeout(2.0e-3)
                if self.mode is None:
                    # Device state before any RAM: a post-copy stream
                    # (which does not ack device state).
                    self.mode = "postcopy"
                else:
                    endpoint.send(
                        Packet(ACK_BYTES, payload=Ack(), kind="migration")
                    )
            elif isinstance(payload, PostCopyHandoff):
                self.mode = "postcopy"
                memory._next_alloc = max(memory._next_alloc, payload.alloc_floor)
                guest = payload.guest_system
                postcopy_total = max(payload.total_pages, 1)
                self.vm.adopt_guest(guest)
                self._postcopy_penalty(guest, postcopy_received, postcopy_total)
                endpoint.send(Packet(ACK_BYTES, payload=Ack(), kind="migration"))
            elif isinstance(payload, PostCopyDone):
                if guest is not None:
                    guest.kernel.extra_op_latency = 0.0
                endpoint.send(Packet(ACK_BYTES, payload=Ack(), kind="migration"))
                return
            elif isinstance(payload, Complete):
                self._finish(memory, payload)
                endpoint.send(Packet(ACK_BYTES, payload=Ack(), kind="migration"))
                return
            else:
                raise MigrationError(f"unexpected migration payload {payload!r}")

    @staticmethod
    def _postcopy_penalty(guest, received_pages, total_pages):
        from repro.migration.postcopy import FAULT_TOUCH_RATE, REMOTE_FAULT_RTT

        missing = max(0.0, 1.0 - received_pages / total_pages)
        guest.kernel.extra_op_latency = (
            FAULT_TOUCH_RATE * missing * REMOTE_FAULT_RTT
        )

    def _apply_chunk(self, memory, chunk, depth, cost_model):
        """Write the chunk into guest memory; returns the apply cost.

        Real pages are genuinely written (their outcomes price the
        faults at this destination's depth); bulk pages are counted and
        priced per-page; zero pages only cost the scan.
        """
        cost = 0.0
        for gpfn, content in chunk.entries:
            outcome = memory.write(gpfn, content)
            cost += cost_model.write_outcome_cost(outcome, depth)
            if depth >= 2:
                cost += cost_model.exit_cost(ExitReason.INVEPT, depth)
        if chunk.dedup_table:
            # Back-referenced pages shipped as 24-byte refs, but the
            # destination materializes each with a real write — same
            # fault costs as a full page, only the wire got cheaper.
            entries = chunk.entries
            for gpfn, idx in chunk.dedup_table:
                outcome = memory.write(gpfn, entries[idx][1])
                cost += cost_model.write_outcome_cost(outcome, depth)
                if depth >= 2:
                    cost += cost_model.exit_cost(ExitReason.INVEPT, depth)
        if chunk.bulk_pages:
            memory.touch_bulk(chunk.bulk_pages)
            per_page = (
                cost_model.minor_fault_cost
                + cost_model.page_write_cost
                + cost_model.exit_cost(ExitReason.EPT_VIOLATION, depth)
            )
            if depth >= 2:
                per_page += cost_model.exit_cost(ExitReason.INVEPT, depth)
            cost += chunk.bulk_pages * per_page
        cost += chunk.zero_pages * SCAN_COST_PER_PAGE
        return cost

    def _finish(self, memory, handoff):
        memory._next_alloc = max(memory._next_alloc, handoff.alloc_floor)
        self.vm.adopt_guest(handoff.guest_system)
