"""Migration wire protocol messages.

Sizes follow QEMU's RAM stream format closely enough for honest timing:
a normal page costs its 4 KiB of content plus an 8-byte header; a zero
page costs only the header; bulk pages (guest-unique anonymous memory
tracked by count) are full-size.
"""

PAGE_WIRE_BYTES = 4096 + 8
ZERO_WIRE_BYTES = 8
ACK_BYTES = 64
#: Fraction of a page XBZRLE delta encoding ships on average for a
#: cache-hit resend (run-length encoded word diffs).
XBZRLE_DELTA_FRACTION = 0.28
#: Wire cost of one dedup back-reference: gpfn + chunk-local index +
#: header (the content itself already shipped once in this chunk).
DEDUP_REF_WIRE_BYTES = 24


def dedup_entries(entries):
    """Group ``(gpfn, content)`` entries by content value.

    Returns ``(unique, table)``: ``unique`` carries each distinct
    content once (first gpfn wins), ``table`` lists ``(gpfn, index)``
    back-references into ``unique`` for every duplicate.  Contents are
    compared by value, so pages the page store interned to the same
    record collapse for free.
    """
    index_of = {}
    unique = []
    table = []
    for entry in entries:
        content = entry[1]
        idx = index_of.get(content)
        if idx is None:
            index_of[content] = len(unique)
            unique.append(entry)
        else:
            table.append((entry[0], idx))
    return unique, table


class RamChunk:
    """A batch of RAM pages.

    ``entries`` is a list of ``(gpfn, content)`` for materialized pages;
    ``bulk_pages`` counts content-opaque full-size pages; ``zero_pages``
    counts header-only zero pages; ``xbzrle_pages`` counts how many of
    the full-size pages were delta-encoded against the sender's cache
    (their wire cost shrinks to :data:`XBZRLE_DELTA_FRACTION`).
    ``dedup_table`` (capability ``dedup``) lists ``(gpfn, index)``
    back-references for pages whose content equals an entry of this
    chunk: each costs :data:`DEDUP_REF_WIRE_BYTES` on the wire instead
    of a full page, but the destination still performs the full
    per-page write, so apply-side fault costs are unchanged.
    """

    __slots__ = (
        "entries",
        "bulk_pages",
        "zero_pages",
        "xbzrle_pages",
        "dedup_table",
    )

    def __init__(
        self,
        entries=(),
        bulk_pages=0,
        zero_pages=0,
        xbzrle_pages=0,
        dedup_table=(),
    ):
        self.entries = list(entries)
        self.bulk_pages = bulk_pages
        self.zero_pages = zero_pages
        self.xbzrle_pages = xbzrle_pages
        self.dedup_table = dedup_table

    @property
    def page_count(self):
        return len(self.entries) + len(self.dedup_table) + self.bulk_pages

    @property
    def wire_bytes(self):
        full = (
            (len(self.entries) + self.bulk_pages) * PAGE_WIRE_BYTES
            + self.zero_pages * ZERO_WIRE_BYTES
            + len(self.dedup_table) * DEDUP_REF_WIRE_BYTES
            + 16
        )
        savings = int(
            self.xbzrle_pages * 4096 * (1.0 - XBZRLE_DELTA_FRACTION)
        )
        return max(full - savings, 32)

    def __repr__(self):
        return (
            f"<RamChunk real={len(self.entries)} "
            f"deduped={len(self.dedup_table)} bulk={self.bulk_pages} "
            f"zero={self.zero_pages}>"
        )


class DeviceState:
    """The non-RAM device state sent during the stop-copy phase."""

    __slots__ = ("size_bytes",)

    def __init__(self, size_bytes=256 * 1024):
        self.size_bytes = size_bytes


class Complete:
    """End-of-migration control message carrying the guest handoff.

    ``guest_system`` is the migrating OS; ``alloc_floor`` keeps the
    destination's page allocator clear of every gpfn the source ever
    used; ``bulk_pages_total`` reconciles the bulk counter.
    """

    __slots__ = ("guest_system", "alloc_floor", "bulk_pages_total")

    def __init__(self, guest_system, alloc_floor, bulk_pages_total):
        self.guest_system = guest_system
        self.alloc_floor = alloc_floor
        self.bulk_pages_total = bulk_pages_total


class Ack:
    """Per-chunk flow-control acknowledgement."""

    __slots__ = ()
