"""Migration wire protocol messages.

Sizes follow QEMU's RAM stream format closely enough for honest timing:
a normal page costs its 4 KiB of content plus an 8-byte header; a zero
page costs only the header; bulk pages (guest-unique anonymous memory
tracked by count) are full-size.
"""

PAGE_WIRE_BYTES = 4096 + 8
ZERO_WIRE_BYTES = 8
ACK_BYTES = 64
#: Fraction of a page XBZRLE delta encoding ships on average for a
#: cache-hit resend (run-length encoded word diffs).
XBZRLE_DELTA_FRACTION = 0.28


class RamChunk:
    """A batch of RAM pages.

    ``entries`` is a list of ``(gpfn, content)`` for materialized pages;
    ``bulk_pages`` counts content-opaque full-size pages; ``zero_pages``
    counts header-only zero pages; ``xbzrle_pages`` counts how many of
    the full-size pages were delta-encoded against the sender's cache
    (their wire cost shrinks to :data:`XBZRLE_DELTA_FRACTION`).
    """

    __slots__ = ("entries", "bulk_pages", "zero_pages", "xbzrle_pages")

    def __init__(self, entries=(), bulk_pages=0, zero_pages=0, xbzrle_pages=0):
        self.entries = list(entries)
        self.bulk_pages = bulk_pages
        self.zero_pages = zero_pages
        self.xbzrle_pages = xbzrle_pages

    @property
    def page_count(self):
        return len(self.entries) + self.bulk_pages

    @property
    def wire_bytes(self):
        full = (
            (len(self.entries) + self.bulk_pages) * PAGE_WIRE_BYTES
            + self.zero_pages * ZERO_WIRE_BYTES
            + 16
        )
        savings = int(
            self.xbzrle_pages * 4096 * (1.0 - XBZRLE_DELTA_FRACTION)
        )
        return max(full - savings, 32)

    def __repr__(self):
        return (
            f"<RamChunk real={len(self.entries)} bulk={self.bulk_pages} "
            f"zero={self.zero_pages}>"
        )


class DeviceState:
    """The non-RAM device state sent during the stop-copy phase."""

    __slots__ = ("size_bytes",)

    def __init__(self, size_bytes=256 * 1024):
        self.size_bytes = size_bytes


class Complete:
    """End-of-migration control message carrying the guest handoff.

    ``guest_system`` is the migrating OS; ``alloc_floor`` keeps the
    destination's page allocator clear of every gpfn the source ever
    used; ``bulk_pages_total`` reconciles the bulk counter.
    """

    __slots__ = ("guest_system", "alloc_floor", "bulk_pages_total")

    def __init__(self, guest_system, alloc_floor, bulk_pages_total):
        self.guest_system = guest_system
        self.alloc_floor = alloc_floor
        self.bulk_pages_total = bulk_pages_total


class Ack:
    """Per-chunk flow-control acknowledgement."""

    __slots__ = ()
