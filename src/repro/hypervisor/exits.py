"""VM-exit reasons and the calibrated cost model.

This module is the *only* home of timing calibration constants.  Every
benchmark's overhead shape (Figs 2-4, Tables II-IV of the paper) emerges
from the same small set of numbers here — no benchmark carries private
fudge factors.

The nested-exit model follows the Turtles design (Ben-Yehuda et al.,
OSDI 2010): hardware supports only one level of virtualization, so an
exit taken by a guest at depth ``d >= 2`` is first intercepted by L0,
*reflected* to the L(d-1) hypervisor, whose software handler then issues
a burst of privileged instructions (VMREAD/VMWRITE/INVEPT/...), each of
which itself traps.  Exit cost therefore multiplies with depth, and by
different factors per exit reason — EPT violations have an L0 fast path
(small multiplier) while context-switch-style exits pay the full
trampoline (large multiplier).  Those two facts produce, respectively,
the modest +25.7% kernel-compile overhead of Fig 2 and the ~19x pipe
latency blowup of Table III.
"""

from enum import Enum

from repro.errors import HypervisorError


class ExitReason(Enum):
    """Why a guest exited to its hypervisor."""

    # Identity-based hashing: members are singletons, so the default
    # Enum hash-by-name only adds string-hashing cost on every counter
    # and cost-table lookup (millions per scenario).
    __hash__ = object.__hash__

    EPT_VIOLATION = "ept_violation"      # first touch / shadow paging fault
    IO_PORT = "io_port"                  # programmed I/O
    MMIO = "mmio"                        # device register access
    HLT = "hlt"                          # idle / context-switch related
    EXTERNAL_INTERRUPT = "external_interrupt"
    TIMER = "timer"                      # guest timer tick
    CPUID = "cpuid"
    MSR_ACCESS = "msr_access"
    HYPERCALL = "hypercall"
    VIRTIO_KICK = "virtio_kick"          # doorbell write to a virtio queue
    INVEPT = "invept"                    # TLB/EPT shootdown (MMU management)
    PRIV_INSTRUCTION = "priv_instruction"  # VMREAD/VMWRITE-class instruction


class CostModel:
    """Translates mechanical events into virtual-time costs.

    All times are seconds.  Depth conventions: depth 0 is bare metal
    (no exits ever), depth 1 a guest on the bare-metal hypervisor,
    depth 2 a nested guest, and so on recursively.
    """

    #: Hardware VM-exit + VM-entry round trip.
    base_exit_cost = 1.2e-6
    #: Extra cost for L0 to reflect an exit into the L1 hypervisor.
    reflect_cost = 0.4e-6

    #: Software handler cost at the hypervisor that owns the exit.
    handler_cost = {
        ExitReason.EPT_VIOLATION: 0.8e-6,
        ExitReason.IO_PORT: 0.5e-6,
        ExitReason.MMIO: 0.6e-6,
        ExitReason.HLT: 0.4e-6,
        ExitReason.EXTERNAL_INTERRUPT: 0.3e-6,
        ExitReason.TIMER: 0.3e-6,
        ExitReason.CPUID: 0.2e-6,
        ExitReason.MSR_ACCESS: 0.25e-6,
        ExitReason.HYPERCALL: 0.3e-6,
        ExitReason.VIRTIO_KICK: 0.7e-6,
        ExitReason.INVEPT: 0.5e-6,
        ExitReason.PRIV_INSTRUCTION: 0.25e-6,
    }

    #: How many privileged instructions the L1 handler issues per exit of
    #: each reason — the Turtles trampoline multiplier.  Reasons with an
    #: L0 fast path (shadow EPT refill) have small values.
    nested_priv_ops = {
        ExitReason.EPT_VIOLATION: 4,
        ExitReason.IO_PORT: 14,
        ExitReason.MMIO: 16,
        ExitReason.HLT: 20,
        ExitReason.EXTERNAL_INTERRUPT: 10,
        ExitReason.TIMER: 10,
        ExitReason.CPUID: 6,
        ExitReason.MSR_ACCESS: 8,
        ExitReason.HYPERCALL: 12,
        ExitReason.VIRTIO_KICK: 16,
        ExitReason.INVEPT: 14,
        ExitReason.PRIV_INSTRUCTION: 2,
    }

    #: TLB-pressure tax on CPU time by depth, scaled by a workload's
    #: memory intensity in [0, 1].  Depth 1 hardware 2D paging is nearly
    #: free; depth 2 pays for shadow-EPT maintenance.
    tlb_tax = {0: 0.0, 1: 0.02, 2: 0.27}
    #: Tax applied per depth beyond the table above.
    tlb_tax_extra_depth = 0.30

    #: Additive per-syscall ring-transition tax per virtualization level.
    syscall_depth_tax = 1.2e-8

    #: Guest timer tick rate (CONFIG_HZ=250 style) — each tick exits.
    timer_hz = 250.0

    #: Latency of breaking KSM copy-on-write on a write to a merged page
    #: (page allocation + copy + rmap fixup; Xiao et al. DSN'13 report
    #: this class of fault at hundreds of microseconds).
    cow_break_cost = 3.8e-4
    #: Plain in-memory page write (cache-warm, 4 KiB).
    page_write_cost = 2.5e-7
    #: Plain in-memory page read.
    page_read_cost = 2.0e-7
    #: Cost of mapping a fresh anonymous page (minor fault, zeroing).
    minor_fault_cost = 9.0e-7

    def __init__(self):
        # Exit and tax-factor costs are pure functions of the class
        # constants, and the engine asks for the same handful of
        # (reason, depth) pairs millions of times per scenario — memoize
        # per instance.  Call :meth:`invalidate_caches` after mutating
        # any constant on a live instance.
        self._exit_cost_cache = {}
        self._tax_factor_cache = {}

    def invalidate_caches(self):
        """Drop memoized costs (after mutating calibration constants)."""
        self._exit_cost_cache.clear()
        self._tax_factor_cache.clear()

    def exit_cost(self, reason, depth):
        """Cost of one exit of ``reason`` taken by a guest at ``depth``."""
        if depth <= 0:
            return 0.0
        cost = self._exit_cost_cache.get((reason, depth))
        if cost is None:
            cost = self._compute_exit_cost(reason, depth)
            self._exit_cost_cache[(reason, depth)] = cost
        return cost

    def _compute_exit_cost(self, reason, depth):
        if not isinstance(reason, ExitReason):
            raise HypervisorError(f"unknown exit reason {reason!r}")
        handler = self.handler_cost[reason]
        if depth == 1:
            return self.base_exit_cost + handler
        ops = self.nested_priv_ops[reason]
        # L0 intercepts, reflects to the next hypervisor down; that
        # hypervisor's handler runs `ops` privileged instructions, each
        # of which is itself an exit taken one level shallower.
        return (
            self.base_exit_cost
            + self.reflect_cost
            + handler
            + ops * self.exit_cost(ExitReason.PRIV_INSTRUCTION, depth - 1)
        )

    def cpu_tax_factor(self, depth, mem_intensity):
        """Multiplier on pure CPU time for a guest at ``depth``.

        ``mem_intensity`` in [0, 1]: ~0.1 for register-bound loops
        (lmbench arithmetic), 1.0 for TLB-heavy work (kernel compile).
        """
        factor = self._tax_factor_cache.get((depth, mem_intensity))
        if factor is None:
            if not 0.0 <= mem_intensity <= 1.0:
                raise HypervisorError(f"mem_intensity out of range: {mem_intensity}")
            if depth in self.tlb_tax:
                tax = self.tlb_tax[depth]
            else:
                extra = depth - max(self.tlb_tax)
                tax = self.tlb_tax[max(self.tlb_tax)] + extra * self.tlb_tax_extra_depth
            factor = 1.0 + tax * mem_intensity
            self._tax_factor_cache[(depth, mem_intensity)] = factor
        return factor

    def cpu_cost(self, seconds, depth, mem_intensity=0.5):
        """Virtual time to execute ``seconds`` of native CPU work.

        Adds the TLB tax and the steady drizzle of timer-tick exits.
        """
        if seconds < 0:
            raise HypervisorError(f"negative cpu time: {seconds}")
        taxed = seconds * self.cpu_tax_factor(depth, mem_intensity)
        timer = seconds * self.timer_hz * self.exit_cost(ExitReason.TIMER, depth)
        return taxed + timer

    def write_outcome_cost(self, outcome, depth):
        """Virtual time for one page write given its mechanical outcome."""
        cost = self.page_write_cost
        if outcome.cow_broken:
            cost += self.cow_break_cost
        if outcome.first_touch_levels:
            # One EPT-violation-class fault per translation level that
            # had to materialize a mapping.
            for level in range(outcome.first_touch_levels):
                cost += self.exit_cost(ExitReason.EPT_VIOLATION, depth - level)
            cost += self.minor_fault_cost
        return cost
