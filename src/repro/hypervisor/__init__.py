"""The KVM-analogue hypervisor layer.

Sub-modules:

* :mod:`~repro.hypervisor.exits` — VM-exit reasons and the *single*
  calibrated cost model that drives every benchmark in the reproduction.
* :mod:`~repro.hypervisor.vmcs` — virtual machine control structures,
  including the in-memory signature pages the VMCS-scan baseline
  detector looks for.
* :mod:`~repro.hypervisor.ept` — guest physical memory as a translation
  layer over a parent memory domain (nested guests chain domains).
* :mod:`~repro.hypervisor.ksm` — kernel samepage merging daemon.
* :mod:`~repro.hypervisor.kvm` — the per-system KVM facade that creates
  VMs and accounts exits.
* :mod:`~repro.hypervisor.scheduler` — proportional-share CPU accounting.
"""

from repro.hypervisor.ept import GuestMemory
from repro.hypervisor.exits import CostModel, ExitReason
from repro.hypervisor.ksm import KsmDaemon
from repro.hypervisor.kvm import Kvm, KvmVm
from repro.hypervisor.scheduler import CpuScheduler
from repro.hypervisor.vmcs import VMCS_REVISION_MAGIC, Vmcs

__all__ = [
    "CostModel",
    "CpuScheduler",
    "ExitReason",
    "GuestMemory",
    "Kvm",
    "KvmVm",
    "KsmDaemon",
    "VMCS_REVISION_MAGIC",
    "Vmcs",
]
