"""Virtual Machine Control Structures.

Real VT-x keeps one VMCS region per vCPU, a 4 KiB page whose first word
holds the processor's VMCS *revision identifier*.  Hypervisor memory
forensics (Graziano et al., RAID 2013 — the baseline the paper's §VI-E
discusses) finds hypervisors by scanning RAM for pages that look like
VMCS regions.  We therefore materialize each VMCS as a real page in the
creating system's memory domain carrying a recognizable magic prefix, so
the :mod:`repro.core.detection.vmcs_scan` baseline works — and fails —
for the same structural reasons as the real tool.
"""

from itertools import count

from repro.errors import HypervisorError

#: The revision-id magic written at the start of every Intel VMCS page.
VMCS_REVISION_MAGIC = b"VMCS\x12\x00\x00\x80"
#: AMD's control block uses a different layout entirely — the VT-x
#: signature scanner cannot recognize it (the baseline's failure mode).
VMCB_MAGIC = b"VMCB\x01\x00\x0d\x00"

_vmcs_ids = count(1)


class Vmcs:
    """One control structure for one virtual CPU.

    ``backing_pfn`` is the page in the *owner's* memory domain that holds
    the structure (for an L1 hypervisor this is a guest page, which
    resolves down to a host frame — exactly what lets a host-side memory
    scan discover nested hypervisors).
    """

    def __init__(self, owner_memory, vm_name, vcpu_index, vpid, cpu_vendor="intel"):
        self.vmcs_id = next(_vmcs_ids)
        self.vm_name = vm_name
        self.vcpu_index = vcpu_index
        self.vpid = vpid
        self.launched = False
        self.exit_counts = {}
        self.owner_memory = owner_memory
        magic = VMCS_REVISION_MAGIC if cpu_vendor == "intel" else VMCB_MAGIC
        content = (
            magic
            + self.vmcs_id.to_bytes(4, "little")
            + vpid.to_bytes(2, "little")
        )
        self.backing_pfn = owner_memory.allocate(content, mergeable=False)

    def record_exit(self, reason, count=1.0):
        """Bump the per-reason exit counter (for `info registers`-style
        inspection and the tests that assert trampoline multiplication).

        Counts are floats: syscall profiles express amortized exits (for
        example one virtio kick per ~16 network sends).
        """
        self.exit_counts[reason] = self.exit_counts.get(reason, 0.0) + count

    @property
    def total_exits(self):
        return sum(self.exit_counts.values())

    def release(self):
        """Free the backing page when the VM is destroyed."""
        if self.backing_pfn is not None:
            self.owner_memory.free(self.backing_pfn)
            self.backing_pfn = None

    def __repr__(self):
        return f"<Vmcs vm={self.vm_name} vcpu={self.vcpu_index} vpid={self.vpid}>"


def looks_like_vmcs(content):
    """Signature predicate used by the memory-forensics baseline."""
    return content.startswith(VMCS_REVISION_MAGIC)


def allocate_vpid(allocated):
    """Pick the smallest free virtual-processor identifier."""
    vpid = 1
    while vpid in allocated:
        vpid += 1
    if vpid > 0xFFFF:
        raise HypervisorError("VPID space exhausted")
    return vpid
