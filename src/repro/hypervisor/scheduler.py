"""Proportional-share CPU accounting.

The paper's testbed (8 logical CPUs) was never CPU-oversubscribed
during single-benchmark runs, so contention barely features in its
numbers.  We still model it: when more runnable busy entities exist
than logical CPUs, everyone's CPU time stretches proportionally.
This lets ablation benchmarks explore co-resident interference (the
cloud co-residence problems the related-work section surveys).
"""

from repro.errors import HypervisorError


class CpuScheduler:
    """Tracks busy entities on a CPU package; provides a slowdown factor."""

    def __init__(self, cpu):
        self.cpu = cpu
        self._busy = set()

    def occupy(self, token):
        """Mark ``token`` (a process, a vCPU) as runnable-busy."""
        if token in self._busy:
            raise HypervisorError(f"token already occupying CPU: {token!r}")
        self._busy.add(token)

    def release(self, token):
        if token not in self._busy:
            raise HypervisorError(f"token not occupying CPU: {token!r}")
        self._busy.discard(token)

    @property
    def busy_count(self):
        return len(self._busy)

    def is_busy(self, token):
        return token in self._busy

    def slowdown_factor(self):
        """>= 1.0; how much CPU-bound work stretches under contention."""
        if self.busy_count <= self.cpu.logical_cpus:
            return 1.0
        return self.busy_count / self.cpu.logical_cpus
