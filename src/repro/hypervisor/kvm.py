"""The per-system KVM facade.

A :class:`Kvm` instance corresponds to the pair of kernel modules
(`kvm.ko` + `kvm-intel.ko`) loaded in one operating system.  The host's
OS has one; an L1 guest that will host nested VMs loads its own,
provided the parent exposed VMX into the guest (KVM's ``nested=1``).

:class:`KvmVm` bundles what the kernel keeps per VM: the guest memory
slot, one VMCS per vCPU (materialized as real signature-bearing pages —
see :mod:`repro.hypervisor.vmcs`), and exit counters.
"""

from repro.errors import HypervisorError
from repro.hypervisor.ept import GuestMemory
from repro.hypervisor.vmcs import Vmcs, allocate_vpid


class KvmVm:
    """Kernel-side state for one virtual machine."""

    def __init__(self, kvm, name, vcpus, memory_mb, expose_vmx):
        self.kvm = kvm
        self.name = name
        self.vcpus = vcpus
        self.expose_vmx = expose_vmx
        self._tracer = kvm.system.engine.tracer
        self.memory = GuestMemory(
            kvm.system.memory, memory_mb, name=f"{name}-ram", mergeable=True
        )
        self.vmcs = []
        for index in range(vcpus):
            vpid = allocate_vpid(kvm._vpids)
            kvm._vpids.add(vpid)
            self.vmcs.append(
                Vmcs(
                    kvm.system.memory,
                    name,
                    index,
                    vpid,
                    cpu_vendor=kvm.system.cpu.vendor,
                )
            )
        self.destroyed = False

    @property
    def depth(self):
        """Virtualization depth of the guest this VM hosts."""
        return self.memory.nesting_depth

    def record_exit(self, reason, count=1.0):
        """Account ``count`` exits of ``reason`` against vCPU 0."""
        self.vmcs[0].record_exit(reason, count)
        tracer = self._tracer
        if tracer.enabled:
            tracer.vm_exit(self.name, reason, count, self.depth)

    @property
    def total_exits(self):
        return sum(v.total_exits for v in self.vmcs)

    def exit_count(self, reason):
        return sum(v.exit_counts.get(reason, 0) for v in self.vmcs)

    def destroy(self):
        """Release VMCS pages and guest memory."""
        if self.destroyed:
            return
        self.destroyed = True
        for vmcs in self.vmcs:
            self.kvm._vpids.discard(vmcs.vpid)
            vmcs.release()
        self.memory.release()
        self.kvm.vms.pop(self.name, None)

    def __repr__(self):
        return f"<KvmVm {self.name} vcpus={self.vcpus} depth={self.depth}>"


class Kvm:
    """The KVM module loaded inside one operating system."""

    def __init__(self, system):
        if not system.cpu.vmx:
            raise HypervisorError(
                "kvm-intel: VMX unavailable "
                "(CPU lacks VT-x or parent did not expose nested virtualization)"
            )
        self.system = system
        self.vms = {}
        self._vpids = set()

    def create_vm(self, name, vcpus=1, memory_mb=1024, expose_vmx=False):
        """Create kernel state for a VM (QEMU's KVM_CREATE_VM path)."""
        faults = self.system.engine.faults
        if faults is not None:
            faults.check_vm_create(self.system)
        if name in self.vms:
            raise HypervisorError(f"VM name already in use: {name!r}")
        if vcpus < 1:
            raise HypervisorError("VM needs at least one vCPU")
        vm = KvmVm(self, name, vcpus, memory_mb, expose_vmx)
        self.vms[name] = vm
        return vm

    def destroy_vm(self, name):
        vm = self.vms.get(name)
        if vm is None:
            raise HypervisorError(f"no such VM: {name!r}")
        vm.destroy()

    @property
    def nesting_depth(self):
        """Depth of guests created by this KVM instance."""
        return self.system.memory.nesting_depth + 1

    def __repr__(self):
        return f"<Kvm on {self.system.name!r} vms={list(self.vms)}>"
