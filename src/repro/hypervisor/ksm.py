"""Kernel samepage merging — the host-side memory deduplication daemon.

Faithful to Linux KSM in the properties the paper's detector depends on:

* only madvised (``mergeable``) pages are scanned;
* a page must be seen with *unchanged* content on two consecutive scan
  passes before it is merged (the checksum volatility filter) — this is
  what makes the detector "wait for a while" after loading File-A;
* merged pages are read-only shared frames; any write breaks
  copy-on-write, which is 2-3 orders of magnitude slower than a plain
  write (:attr:`repro.hypervisor.exits.CostModel.cow_break_cost`) — the
  timing side channel of Figs 5 and 6;
* the daemon scans ``pages_to_scan`` pages every ``sleep_millisecs``,
  exactly the two sysfs knobs Linux exposes.

The stable/unstable structures are content-keyed dictionaries rather
than the kernel's rb-trees — same semantics, simpler mechanics.
"""

from copy import deepcopy as _deepcopy

from repro.errors import HypervisorError
from repro.hardware.page_store import content_digest


class KsmStats:
    """Counters mirroring /sys/kernel/mm/ksm."""

    def __init__(self):
        self.full_scans = 0
        self.pages_merged_total = 0
        self.cow_breaks = 0
        #: Stable-frame promotions / drops over the daemon's lifetime.
        #: Conservation invariant (the fault-injection property tests
        #: hold it across stalls):
        #: ``pages_shared == pages_shared_total - pages_unshared``.
        self.pages_shared_total = 0
        self.pages_unshared = 0

    def __repr__(self):
        return (
            f"<KsmStats scans={self.full_scans} "
            f"merged={self.pages_merged_total}>"
        )


class KsmDaemon:
    """The ksmd kernel thread.

    Operates on a :class:`~repro.hardware.memory.PhysicalMemory`; only
    the bottom of a nesting chain runs KSM in this reproduction (the
    paper's detection runs at L0).
    """

    def __init__(self, machine, pages_to_scan=1250, sleep_millisecs=20):
        if pages_to_scan < 1:
            raise HypervisorError("pages_to_scan must be >= 1")
        if sleep_millisecs <= 0:
            raise HypervisorError("sleep_millisecs must be positive")
        self.machine = machine
        self.engine = machine.engine
        self.memory = machine.memory
        self.memory.attach_ksm(self)
        self.pages_to_scan = pages_to_scan
        self.sleep_seconds = sleep_millisecs / 1000.0
        self.stats = KsmStats()
        self._stable = {}       # digest -> Frame (read-only shared)
        self._unstable = {}     # digest -> pfn, rebuilt every full pass
        self._seen = {}         # pfn -> digest from the previous pass
        self._cursor = []       # remaining (pfn) list for the current pass
        self._pass_merges = 0
        self._pass_new_seen = 0
        self._pass_start_marks = (None, None)
        self._pass_started = 0.0
        self._trace_track = f"ksm:{machine.name}"
        self._idle = False
        self._idle_marks = (None, None)
        self._process = None
        self.running = False

    def __deepcopy__(self, memo):
        # The scan bookkeeping dominates a daemon copy and is almost
        # all atomic (pfn ints, digest bytes): flat-copy it and route
        # only frames and the simulation plumbing through the memo.
        # Exists for engine snapshot forks; equivalent to the generic
        # deepcopy either way.
        cls = self.__class__
        clone = cls.__new__(cls)
        memo[id(self)] = clone
        clone.machine = _deepcopy(self.machine, memo)
        clone.engine = _deepcopy(self.engine, memo)
        clone.memory = _deepcopy(self.memory, memo)
        clone.pages_to_scan = self.pages_to_scan
        clone.sleep_seconds = self.sleep_seconds
        clone.stats = _deepcopy(self.stats, memo)
        memo_get = memo.get
        clone._stable = {
            digest: (memo_get(id(frame)) or _deepcopy(frame, memo))
            for digest, frame in self._stable.items()
        }
        clone._unstable = dict(self._unstable)
        clone._seen = dict(self._seen)
        clone._cursor = list(self._cursor)
        clone._pass_merges = self._pass_merges
        clone._pass_new_seen = self._pass_new_seen
        clone._pass_start_marks = self._pass_start_marks
        clone._pass_started = self._pass_started
        clone._trace_track = self._trace_track
        clone._idle = self._idle
        clone._idle_marks = self._idle_marks
        clone._process = _deepcopy(self._process, memo)
        clone.running = self.running
        return clone

    # -- lifecycle --------------------------------------------------------

    def start(self):
        """Launch the ksmd loop (echo 1 > /sys/kernel/mm/ksm/run)."""
        if self.running:
            return self._process
        self.running = True
        self._process = self.engine.process(
            self._run(), name="ksmd", resumable=self
        )
        return self._process

    def __resume__(self):
        """Snapshot protocol: a fresh loop generator in resuming mode.

        The copy machinery advances it to the bare yield, where it
        stands in for the original generator suspended on its sleep
        timeout — the copied timeout delivers into it and the loop
        continues exactly as the original would have.
        """
        return self._run(resuming=True)

    def stop(self):
        """Stop scanning (existing merges remain, as with run=0)."""
        self.running = False

    @property
    def pages_shared(self):
        """Number of distinct stable (shared) frames."""
        return len(self._stable)

    @property
    def pages_sharing(self):
        """Number of page mappings deduplicated into stable frames."""
        return sum(f.refcount - 1 for f in self._stable.values())

    # -- scanning ---------------------------------------------------------

    def _run(self, resuming=False):
        if resuming:
            # Stand-in for the original generator parked on its sleep
            # timeout: nothing before this yield creates events or
            # touches counters, so splicing in here is invisible.
            yield
            if not self.running:
                return
            self._wake()
        while self.running:
            yield self.engine.timeout(self.sleep_seconds)
            if not self.running:
                return
            self._wake()

    def _marks(self):
        memory = self.memory
        return (memory._mergeable_generation, memory._write_epoch)

    def _wake(self):
        faults = self.engine.faults
        if faults is not None and faults.ksm_stalled(self):
            # Injected stall: ksmd wedged mid-pass (the cursor and all
            # volatility-filter state survive untouched, so scanning
            # resumes exactly where it stopped).
            return
        if self._idle:
            if self._marks() == self._idle_marks:
                return
            self._idle = False
        if not self._cursor:
            self._begin_pass()
        cursor = self._cursor
        budget = self.pages_to_scan
        # Detach this wake's batch in one slice (the cursor is consumed
        # from the tail, matching the historical pop() order).
        if budget >= len(cursor):
            batch = cursor[::-1]
            del cursor[:]
        else:
            batch = cursor[: -budget - 1 : -1]
            del cursor[-budget:]
        self._scan_batch(batch)
        self.engine.perf.ksm_pages_scanned += len(batch)
        if not cursor:
            self._end_pass()

    def _begin_pass(self):
        self._cursor = self.memory.mergeable_pfns()
        self._unstable.clear()
        self._pass_merges = 0
        self._pass_new_seen = 0
        self._pass_start_marks = self._marks()
        self._pass_started = self.engine.now

    def _end_pass(self):
        self.stats.full_scans += 1
        self.engine.perf.ksm_passes += 1
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.complete(
                "ksm.pass",
                "ksm",
                self._pass_started,
                track=self._trace_track,
                args={
                    "merges": self._pass_merges,
                    "new_seen": self._pass_new_seen,
                    "pages_shared": len(self._stable),
                    "full_scans": self.stats.full_scans,
                },
            )
            tracer.metrics.counter(
                "ksm.merges", machine=self.machine.name
            ).inc(self._pass_merges)
            tracer.metrics.gauge(
                "ksm.pages_shared", machine=self.machine.name
            ).set(len(self._stable))
        if (
            self._pass_merges == 0
            and self._pass_new_seen == 0
            and self._marks() == self._pass_start_marks
        ):
            # Nothing changed during an entirely fruitless pass: go idle
            # until the memory epochs move again.
            self._idle = True
            self._idle_marks = self._pass_start_marks

    def _scan_one(self, pfn):
        """Scan a single page (kept for targeted tests and callers)."""
        self._scan_batch((pfn,))

    def _scan_batch(self, pfns):
        """Scan a batch of pages: digest sweep first, merges second.

        The sweep runs on the memory's scan-candidate index
        (``pfn -> PageRecord``) — membership in that dict already means
        "mergeable and not yet shared", so the common cases (volatile
        page, lone stabilized page) finish without touching a Frame
        object.  Pages that need merge work are grouped into per-digest
        buckets, in scan order, and handled together afterwards by
        :meth:`_merge_buckets`.

        No virtual time passes inside a batch, so deferring the merges
        behind the sweep is timing-equivalent to the historical
        interleaved loop; the bucket bookkeeping (once a digest has a
        bucket, later same-digest pages join it) reproduces the exact
        stable/unstable interleaving the one-page-at-a-time scan
        produced.
        """
        memory = self.memory
        scan_records = memory._scan_records
        if len(pfns) > 4:
            # Candidate prefilter at C speed: in the settled state most
            # cursor pfns are parked or shared and would fall out of the
            # sweep on their first dict probe anyway.  Nothing adds to
            # the index mid-batch (no virtual time passes, no writes),
            # so membership now equals membership at visit time — except
            # for pages this very batch parks, which the per-pfn None
            # check below still catches.
            pfns = list(filter(scan_records.__contains__, pfns))
        records_get = scan_records.get
        counts_get = memory._candidate_count.get
        park = memory.park_candidate
        seen = self._seen
        seen_get = seen.get
        stable_get = self._stable.get
        unstable = self._unstable
        unstable_get = unstable.get
        new_seen = 0
        merge_buckets = None
        bucket_order = None
        for pfn in pfns:
            record = records_get(pfn)
            if record is None:
                # Freed, non-mergeable, or already KSM-shared.
                continue
            digest = record._digest
            if digest is None:
                digest = record._digest = content_digest(record.content)
            if seen_get(pfn) != digest:
                # A newly seen or freshly rewritten page: it may
                # stabilize and merge next pass, so the daemon must not
                # go idle yet (volatility filter — give it a full pass
                # to stabilize).
                seen[pfn] = digest
                new_seen += 1
                continue
            if merge_buckets is not None:
                bucket = merge_buckets.get(digest)
                if bucket is not None:
                    bucket.append(pfn)
                    continue
            stable_frame = stable_get(digest)
            if stable_frame is not None and stable_frame.refcount > 0:
                # A live stable frame exists: bucket for merging.
                if merge_buckets is None:
                    merge_buckets = {}
                    bucket_order = []
                merge_buckets[digest] = [pfn]
                bucket_order.append(digest)
                continue
            other_pfn = unstable_get(digest)
            if other_pfn is None or other_pfn == pfn:
                # Lone stabilized page: park it in the unstable tree
                # and move on — the dominant case every pass.  When no
                # other candidate anywhere holds this content (count of
                # 1 on its record), the page also retires from the
                # active index entirely: rescanning it is a guaranteed
                # no-op until a duplicate appears or it is rewritten,
                # and the memory layer wakes it on either event.
                unstable[digest] = pfn
                if counts_get(record) == 1:
                    park(pfn, record)
                continue
            # A potential unstable partner: bucket for promotion.
            if merge_buckets is None:
                merge_buckets = {}
                bucket_order = []
            merge_buckets[digest] = [pfn]
            bucket_order.append(digest)
        merges = 0
        if merge_buckets is not None:
            merges = self._merge_buckets(merge_buckets, bucket_order)
        self._pass_merges += merges
        self._pass_new_seen += new_seen
        if merges:
            tracer = self.engine.tracer
            if tracer.enabled:
                tracer.instant(
                    "ksm.merge",
                    "ksm",
                    track=self._trace_track,
                    args={"count": merges},
                )

    def _merge_buckets(self, buckets, order):
        """Merge the bucketed candidates, one digest group at a time.

        Runs the full per-page merge protocol (live frame checks,
        stable-tree remap, unstable promotion) inside each bucket, in
        scan order — a page invalidated by an earlier merge in its own
        bucket (its frame became the shared one) is skipped exactly as
        the interleaved scan skipped it.  Returns the number of page
        merges performed.
        """
        memory = self.memory
        frame_of = memory.frame
        remap = memory.remap
        stable = self._stable
        stable_get = stable.get
        unstable = self._unstable
        unstable_get = unstable.get
        stats = self.stats
        merges = 0
        bucket_merges = 0
        for digest in order:
            before = merges
            for pfn in buckets[digest]:
                frame = frame_of(pfn)
                if frame is None or not frame.mergeable or frame.ksm_shared:
                    continue
                stable_frame = stable_get(digest)
                if stable_frame is not None and stable_frame.refcount > 0:
                    if stable_frame is frame:
                        continue
                    remap(pfn, stable_frame)
                    stats.pages_merged_total += 1
                    merges += 1
                    continue
                other_pfn = unstable_get(digest)
                if other_pfn is not None and other_pfn != pfn:
                    other_frame = frame_of(other_pfn)
                    if (
                        other_frame is not None
                        and not other_frame.ksm_shared
                        and other_frame.digest == digest
                    ):
                        # Promote this frame to the stable tree and fold
                        # the unstable partner into it.
                        memory.mark_ksm_shared(pfn, frame)
                        stable[digest] = frame
                        stats.pages_shared_total += 1
                        remap(other_pfn, frame)
                        stats.pages_merged_total += 1
                        merges += 1
                        continue
                unstable[digest] = pfn
            if merges > before:
                bucket_merges += 1
        if bucket_merges:
            self.engine.perf.ksm_bucket_merges += bucket_merges
        return merges

    def sysfs_text(self):
        """The /sys/kernel/mm/ksm/* view an administrator reads."""
        return (
            f"run: {1 if self.running else 0}\n"
            f"pages_to_scan: {self.pages_to_scan}\n"
            f"sleep_millisecs: {int(self.sleep_seconds * 1000)}\n"
            f"pages_shared: {self.pages_shared}\n"
            f"pages_sharing: {self.pages_sharing}\n"
            f"full_scans: {self.stats.full_scans}\n"
        )

    # -- callbacks from the memory layer ---------------------------------

    def forget_frame(self, frame):
        """Drop a stable frame (its last mapper wrote to or freed it)."""
        digest = frame.digest
        if self._stable.get(digest) is frame:
            del self._stable[digest]
            self.stats.pages_unshared += 1
            tracer = self.engine.tracer
            if tracer.enabled:
                # A stable frame broke: either a CoW write (the paper's
                # side channel firing) or the last mapper freed it.
                tracer.instant(
                    "ksm.unmerge",
                    "ksm",
                    track=self._trace_track,
                    args={"refcount": frame.refcount},
                )
        frame.ksm_shared = False

    def forget_pfn(self, pfn):
        """A mergeable pfn was freed: drop its volatility-filter state.

        Without this the ``_seen`` map grows monotonically with every
        mergeable page that ever existed — unbounded under alloc/free
        churn (guest reboots, short-lived VMs).
        """
        self._seen.pop(pfn, None)
