"""Guest physical memory: a translation layer over a parent domain.

A :class:`GuestMemory` plays the role of the extended page tables: it
maps guest pfns onto pages of the *parent* memory domain.  For an L1
guest the parent is host physical memory; for an L2 (nested) guest the
parent is the L1 guest's memory, so every L2 page ultimately resolves to
an L0 host frame.  Two consequences the reproduction depends on:

* L0's KSM can merge an L2 page with an L0 page (the detector's basis);
* writing an L2 page dirties the corresponding L1 page too, so
  migrating the L1 rootkit VM would carry the nested guest along.

Pages are materialized lazily.  All gpfn numbering inside a domain is
handed out by :meth:`alloc_page` / :meth:`alloc_pages`, except for
:meth:`ensure_mapped`, which migration's receive path uses to populate
exact source page numbers.
"""

from copy import deepcopy as _deepcopy

from repro.errors import MemoryError_
from repro.hardware.memory import PAGE_SIZE, MemoryDomain, WriteOutcome
from repro.migration.dirty_tracking import DirtyBitmap


class GuestMemory(MemoryDomain):
    """A guest's RAM, backed by (a slice of) its parent's memory."""

    def __init__(self, parent, size_mb, name="guest-ram", mergeable=True):
        if size_mb <= 0:
            raise MemoryError_("guest memory size must be positive")
        self.parent = parent
        self.name = name
        self.size_mb = size_mb
        self.total_pages = size_mb * 1024 * 1024 // PAGE_SIZE
        #: QEMU madvises guest RAM MADV_MERGEABLE by default; frames
        #: materialized below inherit this flag.
        self.mergeable = mergeable
        self._mapping = {}
        self._next_alloc = 0
        # Dirty log as an int-backed bitmap: one 64-page word per dict
        # slot (KVM's representation).  Writes OR a bit in; the log is
        # drained word-wise through a DirtyBitmap wrapper.
        self._dirty_words = {}
        self.dirty_log_enabled = False
        #: Engine perf counters, inherited down the domain chain from
        #: the PhysicalMemory at the bottom (None for exotic parents).
        self.perf = getattr(parent, "perf", None)
        # Bulk pages: large anonymous regions (boot working set, heap
        # arenas) represented by count only.  They carry guest-unique
        # content from KSM's point of view (never merged) and behave as
        # touched pages for migration volume — but cost no Python
        # objects.  Everything content-sensitive (File-A, OS text pages)
        # uses real materialized pages instead.
        self.bulk_touched = 0
        self._bulk_dirty = 0

    def __deepcopy__(self, memo):
        # Mapping and dirty log are int -> int dicts, so shallow dict
        # copies are exact deep copies; only the parent domain and the
        # shared perf counters recurse.  Keeps engine snapshot forks
        # from walking every translation entry through the generic
        # reduce path.
        cls = self.__class__
        clone = cls.__new__(cls)
        memo[id(self)] = clone
        clone.parent = _deepcopy(self.parent, memo)
        clone.name = self.name
        clone.size_mb = self.size_mb
        clone.total_pages = self.total_pages
        clone.mergeable = self.mergeable
        clone._mapping = dict(self._mapping)
        clone._next_alloc = self._next_alloc
        clone._dirty_words = dict(self._dirty_words)
        clone.dirty_log_enabled = self.dirty_log_enabled
        clone.perf = _deepcopy(self.perf, memo)
        clone.bulk_touched = self.bulk_touched
        clone._bulk_dirty = self._bulk_dirty
        return clone

    @property
    def nesting_depth(self):
        return self.parent.nesting_depth + 1

    @property
    def touched_pages(self):
        """Number of materialized guest pages."""
        return len(self._mapping)

    @property
    def untouched_pages(self):
        """Logically-zero pages that have never been materialized."""
        return self.total_pages - len(self._mapping)

    def iter_touched(self):
        """Yield the gpfns of every materialized page."""
        return iter(self._mapping)

    def alloc_page(self, outcome=None, mergeable=None):
        """Hand out a fresh, never-used gpfn (materialized immediately).

        ``mergeable`` is accepted for interface parity with
        PhysicalMemory and ignored: guest RAM frames inherit the
        domain-wide madvise flag.
        """
        while self._next_alloc in self._mapping:
            self._next_alloc += 1
        if self._next_alloc >= self.total_pages:
            raise MemoryError_(f"{self.name}: guest memory exhausted")
        gpfn = self._next_alloc
        self._next_alloc += 1
        self.ensure_mapped(gpfn, outcome)
        return gpfn

    def alloc_pages(self, n, outcome=None):
        """Allocate ``n`` fresh pages; returns the list of gpfns."""
        return [self.alloc_page(outcome) for _ in range(n)]

    def ensure_mapped(self, gpfn, outcome=None):
        """Materialize backing for ``gpfn`` if missing; returns parent pfn.

        Records one first-touch level per translation layer that had to
        allocate, so the cost model can charge the right number of
        EPT-violation exits.
        """
        if gpfn < 0 or gpfn >= self.total_pages:
            raise MemoryError_(f"{self.name}: gpfn {gpfn} out of range")
        parent_pfn = self._mapping.get(gpfn)
        if parent_pfn is None:
            if isinstance(self.parent, GuestMemory):
                parent_pfn = self.parent.alloc_page(outcome)
            else:
                parent_pfn = self.parent.allocate(b"", mergeable=self.mergeable)
            self._mapping[gpfn] = parent_pfn
            if outcome is not None:
                outcome.first_touch_levels += 1
        return parent_pfn

    def read(self, gpfn):
        parent_pfn = self._mapping.get(gpfn)
        if parent_pfn is None:
            return b""
        return self.parent.read(parent_pfn)

    def read_many(self, gpfns):
        """Bulk read for the migration stream.

        Hoists the mapping and parent-domain lookups out of the
        per-page loop; never-materialized gpfns read as zero pages.
        """
        mapping_get = self._mapping.get
        parent_read = self.parent.read
        return [
            (
                gpfn,
                b"" if (parent_pfn := mapping_get(gpfn)) is None
                else parent_read(parent_pfn),
            )
            for gpfn in gpfns
        ]

    def write(self, gpfn, content, outcome=None):
        if outcome is None:
            outcome = WriteOutcome()
        outcome.depth = max(outcome.depth, self.nesting_depth)
        parent_pfn = self.ensure_mapped(gpfn, outcome)
        dirty_words = self._dirty_words
        word_index = gpfn >> 6
        dirty_words[word_index] = dirty_words.get(word_index, 0) | (
            1 << (gpfn & 63)
        )
        self.parent.write(parent_pfn, content, outcome)
        outcome.pfn_chain.append(gpfn)
        return outcome

    def resolve(self, gpfn):
        parent_pfn = self._mapping.get(gpfn)
        if parent_pfn is None:
            return None, None
        return self.parent.resolve(parent_pfn)

    # -- bulk (count-only) pages -----------------------------------------

    def touch_bulk(self, n_pages):
        """Logically touch ``n_pages`` of guest-unique anonymous memory."""
        if n_pages < 0:
            raise MemoryError_("cannot touch a negative page count")
        room = self.total_pages - self.touched_pages - self.bulk_touched
        grown = min(n_pages, max(room, 0))
        self.bulk_touched += grown
        if self.dirty_log_enabled:
            self._bulk_dirty = min(self._bulk_dirty + n_pages, self.bulk_touched)
        return grown

    def dirty_bulk(self, n_pages):
        """Mark ``n_pages`` of the bulk region dirty (workload writes)."""
        if n_pages < 0:
            raise MemoryError_("cannot dirty a negative page count")
        if self.dirty_log_enabled:
            self._bulk_dirty = min(self._bulk_dirty + n_pages, self.bulk_touched)

    def reset_bulk(self):
        """Forget the bulk footprint (guest reboot dropped its anon memory)."""
        self.bulk_touched = 0
        self._bulk_dirty = 0

    # -- dirty logging (live migration) ---------------------------------

    def start_dirty_log(self):
        """Begin tracking writes; clears the current dirty sets."""
        self.dirty_log_enabled = True
        self._dirty_words.clear()
        self._bulk_dirty = 0

    def fetch_and_reset_dirty(self):
        """Return (dirty bitmap, bulk page count) dirtied since last call.

        The bitmap supports ``in``, ``len`` and ascending iteration —
        the interface the tracker and pre-copy loop consume.
        """
        words, self._dirty_words = self._dirty_words, {}
        bulk, self._bulk_dirty = self._bulk_dirty, 0
        perf = self.perf
        if perf is not None:
            perf.dirty_words_scanned += len(words)
        return DirtyBitmap(words), bulk

    def stop_dirty_log(self):
        self.dirty_log_enabled = False
        self._dirty_words.clear()
        self._bulk_dirty = 0

    @property
    def dirty_page_count(self):
        return (
            sum(w.bit_count() for w in self._dirty_words.values())
            + self._bulk_dirty
        )

    @property
    def untracked_pages(self):
        """Pages neither materialized nor bulk-touched (logical zeros)."""
        return self.total_pages - len(self._mapping) - self.bulk_touched

    # -- teardown --------------------------------------------------------

    def release(self):
        """Free every materialized page back to the parent domain."""
        for parent_pfn in self._mapping.values():
            if isinstance(self.parent, GuestMemory):
                self.parent.free_page(parent_pfn)
            else:
                self.parent.free(parent_pfn)
        self._mapping.clear()
        self._dirty_words.clear()

    def allocate(self, content=b"", mergeable=None):
        """Domain-agnostic allocation adapter (matches PhysicalMemory).

        ``mergeable`` is ignored: from the host's point of view every
        page of guest RAM lives in the VM's madvised region, so the
        materialized frame inherits the domain's flag.
        """
        gpfn = self.alloc_page()
        if content:
            self.write(gpfn, content)
        return gpfn

    def free(self, gpfn):
        """Domain-agnostic free adapter (matches PhysicalMemory)."""
        self.free_page(gpfn)

    def free_page(self, gpfn):
        """Release one page (used by a parent-of-nested teardown)."""
        parent_pfn = self._mapping.pop(gpfn, None)
        if parent_pfn is None:
            return
        word_index = gpfn >> 6
        word = self._dirty_words.get(word_index)
        if word is not None:
            word &= ~(1 << (gpfn & 63))
            if word:
                self._dirty_words[word_index] = word
            else:
                del self._dirty_words[word_index]
        if isinstance(self.parent, GuestMemory):
            self.parent.free_page(parent_pfn)
        else:
            self.parent.free(parent_pfn)

    def __repr__(self):
        return (
            f"<GuestMemory {self.name} {self.size_mb}MB depth={self.nesting_depth} "
            f"touched={self.touched_pages}>"
        )
