"""Exporters: Chrome/Perfetto trace JSON and metrics dumps.

The trace export follows the Chrome trace-event format (the JSON array
flavour wrapped in an object), which Perfetto's UI
(https://ui.perfetto.dev) opens directly.  Each tracer becomes one
*process* row (``pid``), each track within it one *thread* row
(``tid``), with ``process_name``/``thread_name`` metadata events naming
them.  Timestamps are virtual-time microseconds; wall-clock stamps are
attached under ``args.wall_ns`` only when ``include_wall=True`` so the
default export is byte-identical across same-seed runs.

:func:`validate_trace` is the schema gate CI runs against the smoke
trace — it checks structural invariants (phase codes, required fields,
non-negative times), not semantics.
"""

import json

from repro.obs import config as obs_config

#: Phase codes the exporter emits / the validator accepts.
PHASES = frozenset({"X", "i", "C", "M"})


def _track_ids(events):
    """Track name -> tid, in order of first appearance (deterministic)."""
    ids = {}
    for event in events:
        track = event[3]
        if track not in ids:
            ids[track] = len(ids) + 1
    return ids


def chrome_trace(tracers=None, include_wall=False):
    """Merge ``tracers`` (default: all registered) into one trace object."""
    if tracers is None:
        tracers = obs_config.tracers()
    trace_events = []
    dropped = 0
    for index, tracer in enumerate(tracers):
        pid = index + 1
        label = tracer.label or f"engine-{index}"
        events = tracer.events()
        dropped += tracer.dropped_events
        trace_events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "name": "process_name",
                "args": {"name": label},
            }
        )
        tracks = _track_ids(events)
        for track, tid in tracks.items():
            trace_events.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": track},
                }
            )
        for ph, name, cat, track, ts_us, dur_us, wall_ns, args in events:
            entry = {
                "ph": ph,
                "pid": pid,
                "tid": tracks[track],
                "ts": ts_us,
                "name": name,
            }
            if cat is not None:
                entry["cat"] = cat
            if ph == "X":
                entry["dur"] = dur_us
            elif ph == "i":
                entry["s"] = "t"
            if ph == "C":
                entry["args"] = dict(args)
            else:
                entry["args"] = dict(args) if args else {}
            if include_wall:
                entry["args"]["wall_ns"] = wall_ns
            trace_events.append(entry)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "virtual-us",
            "dropped_events": dropped,
            "producer": "repro.obs",
        },
    }


def write_chrome_trace(path, tracers=None, include_wall=False):
    """Write the merged trace to ``path``; returns the trace object."""
    trace = chrome_trace(tracers, include_wall=include_wall)
    with open(path, "w") as handle:
        json.dump(trace, handle, sort_keys=True, separators=(",", ":"))
        handle.write("\n")
    return trace


def metrics_json(tracers=None):
    """Deterministic ``{engine_label: metrics}`` dump across tracers."""
    if tracers is None:
        tracers = obs_config.tracers()
    dump = {}
    for index, tracer in enumerate(tracers):
        label = tracer.label or f"engine-{index}"
        tracer.flush()
        dump[label] = tracer.metrics.as_dict()
    return dump


def metrics_text(tracers=None):
    """Human-readable metrics rendering for ``--metrics``."""
    if tracers is None:
        tracers = obs_config.tracers()
    lines = []
    for index, tracer in enumerate(tracers):
        label = tracer.label or f"engine-{index}"
        tracer.flush()
        lines.append(f"[metrics] {label}")
        if len(tracer.metrics):
            lines.append(tracer.metrics.format())
        else:
            lines.append("  (no metrics recorded)")
    return "\n".join(lines)


def validate_trace(trace, require_names=()):
    """Structural validation; returns a list of problems (empty = ok).

    ``require_names``: substrings at least one event name each must
    contain — the CI smoke check passes the tracepoint families it
    expects (``vm_exit``, ``ksm.pass``, ``migration``, ``detect``).
    """
    problems = []
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        return ["top level must be an object with a traceEvents array"]
    events = trace["traceEvents"]
    if not isinstance(events, list):
        return ["traceEvents must be an array"]
    names = set()
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in PHASES:
            problems.append(f"{where}: bad phase {ph!r}")
            continue
        name = event.get("name")
        if not isinstance(name, str) or not name:
            problems.append(f"{where}: missing name")
            continue
        names.add(name)
        if not isinstance(event.get("pid"), int):
            problems.append(f"{where}: missing pid")
        if ph == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: bad ts {ts!r}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: bad dur {dur!r}")
        if ph == "i" and event.get("s") not in ("t", "p", "g"):
            problems.append(f"{where}: instant scope must be t/p/g")
        if ph == "C" and not isinstance(event.get("args"), dict):
            problems.append(f"{where}: counter event needs args")
    for required in require_names:
        if not any(required in name for name in names):
            problems.append(f"no event name contains {required!r}")
    return problems
