"""Run comparison and the append-only bench-history ledger.

Two halves:

* :func:`diff_runs` — the regression engine.  It flattens two JSON
  documents (trace summaries from :mod:`repro.obs.analysis`, metric
  dumps from :func:`repro.obs.export.metrics_json`, or bench reports)
  into dotted scalar keys and compares them under a configurable
  relative threshold.  The output is a machine-readable regression
  report: every numeric drift beyond the threshold, every value whose
  type or text changed, and every key that appeared or vanished.  Two
  same-seed runs summarize byte-identically, so a clean diff is the
  determinism bar and any finding is a real behavior change.
* :func:`append_bench_history` / :func:`load_bench_history` — one JSON
  line per bench run in ``BENCH_history.jsonl``.  ``BENCH_core.json``
  is overwritten per run; the ledger is append-only, so the perf
  trajectory (wall clocks, budget verdicts, fingerprint matches)
  survives across runs and machines and ``repro obs diff --history``
  can compare the last two entries without re-running anything.
"""

import json
import math
import os


def flatten(value, prefix=""):
    """Flatten nested dicts/lists into ``{dotted_key: scalar}``.

    Numbers stay numbers (bools count as numbers), strings stay
    strings, ``None`` becomes the string ``"null"`` so presence is
    still diffable.  List elements key by index.
    """
    out = {}
    if isinstance(value, dict):
        for key in sorted(value):
            child_prefix = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten(value[key], child_prefix))
    elif isinstance(value, (list, tuple)):
        for index, item in enumerate(value):
            child_prefix = f"{prefix}[{index}]" if prefix else f"[{index}]"
            out.update(flatten(item, child_prefix))
    elif value is None:
        out[prefix] = "null"
    else:
        out[prefix] = value
    return out


def _is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def diff_runs(old, new, threshold_pct=0.0, old_label="old", new_label="new"):
    """Compare two JSON documents; returns the regression report dict.

    ``threshold_pct`` is the relative drift (percent) a numeric value
    may move before it is reported — 0.0 demands byte-identical
    numbers, the right bar for same-seed virtual-time summaries.
    Non-numeric values regress on any inequality; keys present on one
    side only are reported as added/removed.  ``clean`` is True when
    nothing regressed.
    """
    flat_old = flatten(old)
    flat_new = flatten(new)
    regressions = []
    added = sorted(set(flat_new) - set(flat_old))
    removed = sorted(set(flat_old) - set(flat_new))
    compared = 0
    for key in sorted(set(flat_old) & set(flat_new)):
        old_value = flat_old[key]
        new_value = flat_new[key]
        compared += 1
        if _is_number(old_value) and _is_number(new_value):
            if old_value == new_value:
                continue
            delta = new_value - old_value
            if old_value != 0:
                rel_pct = 100.0 * delta / abs(old_value)
            else:
                rel_pct = math.inf if delta > 0 else -math.inf
            if abs(rel_pct) <= threshold_pct:
                continue
            regressions.append(
                {
                    "key": key,
                    "old": old_value,
                    "new": new_value,
                    "delta": delta,
                    "rel_pct": (
                        rel_pct if math.isfinite(rel_pct) else None
                    ),
                }
            )
        elif old_value != new_value:
            regressions.append(
                {
                    "key": key,
                    "old": old_value,
                    "new": new_value,
                    "delta": None,
                    "rel_pct": None,
                }
            )
    return {
        "old": old_label,
        "new": new_label,
        "threshold_pct": threshold_pct,
        "compared": compared,
        "regressions": regressions,
        "added": added,
        "removed": removed,
        "clean": not (regressions or added or removed),
    }


def format_diff(report, top=25):
    """Human-readable rendering of a :func:`diff_runs` report."""
    lines = [
        f"diff {report['old']} -> {report['new']}: "
        f"{report['compared']} keys compared, "
        f"threshold {report['threshold_pct']:g}%"
    ]
    for entry in report["regressions"][:top]:
        if entry["rel_pct"] is not None:
            lines.append(
                f"  REGRESSION {entry['key']}: {entry['old']:g} -> "
                f"{entry['new']:g} ({entry['rel_pct']:+.2f}%)"
            )
        else:
            lines.append(
                f"  REGRESSION {entry['key']}: {entry['old']!r} -> "
                f"{entry['new']!r}"
            )
    hidden = len(report["regressions"]) - top
    if hidden > 0:
        lines.append(f"  ... {hidden} more regressions")
    for key in report["added"][:top]:
        lines.append(f"  ADDED   {key}")
    for key in report["removed"][:top]:
        lines.append(f"  REMOVED {key}")
    lines.append(
        "clean: no regressions"
        if report["clean"]
        else f"DIRTY: {len(report['regressions'])} regressions, "
        f"{len(report['added'])} added, {len(report['removed'])} removed"
    )
    return "\n".join(lines)


def write_diff_report(path, report):
    """Write the machine-readable regression report to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return report


# -- the bench-history ledger ----------------------------------------------


def bench_history_record(report, quick=False, timestamp=None):
    """Condense one perf-report dict into a ledger line.

    Wall clocks, budget verdicts, and fingerprint matches survive;
    the bulky fingerprints and metric dumps stay in ``BENCH_core.json``
    — the ledger is a trajectory, not an archive.
    """
    if timestamp is None:
        import time

        timestamp = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    scenarios = {}
    for name, entry in sorted(report.items()):
        condensed = {}
        for key in (
            "wall_seconds",
            "baseline_wall_seconds",
            "improvement_pct",
            "traced_wall_seconds",
            "untraced_wall_seconds",
            "overhead_pct",
            "cold_wall_seconds",
            "speedup_vs_cold",
            "fingerprint_matches_baseline",
            "within_budget",
            "meets_speedup_target",
        ):
            if key in entry:
                condensed[key] = entry[key]
        scenarios[name] = condensed
    return {
        "timestamp": timestamp,
        "quick": quick,
        "scenarios": scenarios,
    }


def append_bench_history(path, record):
    """Append one JSON line to the ledger (created on first use)."""
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    return record


def load_bench_history(path):
    """All ledger records, oldest first; missing file is an empty list."""
    if not os.path.exists(path):
        return []
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def diff_history(path, threshold_pct=10.0):
    """Diff the ledger's last two entries (wall clocks are noisy, so
    the default threshold is loose).  Returns None with fewer than two
    records."""
    records = load_bench_history(path)
    if len(records) < 2:
        return None
    old, new = records[-2], records[-1]
    return diff_runs(
        old["scenarios"],
        new["scenarios"],
        threshold_pct=threshold_pct,
        old_label=old.get("timestamp", "previous"),
        new_label=new.get("timestamp", "latest"),
    )
