"""The virtual-time tracer: spans, instants, and counter samples.

One :class:`Tracer` hangs off every :class:`~repro.sim.engine.Engine`
(``engine.tracer``).  It is born disabled unless the process-wide
defaults (:mod:`repro.obs.config`) say otherwise, and the contract with
the hot paths is strict: a *disabled* tracer costs exactly one
attribute check at each instrumented seam —

    tracer = engine.tracer
    if tracer.enabled:
        tracer.complete("ksm.pass", "ksm", started_at, ...)

Every recorded event is stamped twice: with the engine's virtual time
(the simulated timeline the paper's figures live on) and with a
wall-clock reading (``time.perf_counter_ns``, for finding *host-side*
hot spots).  Exports keep the virtual timeline by default and only
include wall stamps on request, so same-seed traces are byte-identical.

Three event shapes, following the Chrome trace-event model:

* **complete span** (``ph="X"``) — a named interval on a track, with
  duration in virtual time;
* **instant** (``ph="i"``) — a point marker (a CoW break, a placement
  decision);
* **counter sample** (``ph="C"``) — a numeric series (event-queue
  depth, per-sample perf-counter deltas) rendered as a graph track.

Two unbounded-volume sources are decimated deterministically (by call
count, never wall time): :meth:`on_step` samples the engine loop every
``step_sample_interval`` dispatches, and :meth:`vm_exit` coalesces
per-(VM, reason, depth) exit bursts into one instant per
``exit_sample_interval`` recordings.  Ring-buffer mode
(``ring_capacity``) caps memory for long fleet runs by dropping the
oldest events, counting the drops.
"""

import time
from collections import deque

from repro.obs import config as obs_config
from repro.obs.metrics import MetricRegistry


class Tracer:
    """Per-engine trace-event recorder and metric registry host."""

    __slots__ = (
        "engine",
        "label",
        "enabled",
        "record_spans",
        "metrics",
        "dropped_events",
        "ring_capacity",
        "step_sample_interval",
        "exit_sample_interval",
        "_events",
        "_step_countdown",
        "_perf_mark",
        "_exit_pending",
        "_wall",
    )

    def __init__(self, engine, label=None):
        cfg = obs_config.active_config()
        self.engine = engine
        self.label = label
        self.metrics = MetricRegistry()
        self.dropped_events = 0
        self.ring_capacity = cfg.ring_capacity
        self.step_sample_interval = cfg.step_sample_interval
        self.exit_sample_interval = cfg.exit_sample_interval
        self._events = deque()
        self._step_countdown = self.step_sample_interval
        self._perf_mark = None
        self._exit_pending = {}
        self._wall = time.perf_counter_ns
        self.record_spans = cfg.record_spans
        self.enabled = False
        if cfg.enabled:
            self.enable(record_spans=cfg.record_spans)

    # -- lifecycle ---------------------------------------------------------

    def enable(self, record_spans=True, ring_capacity=None):
        """Turn recording on (and register for end-of-run export)."""
        self.enabled = True
        self.record_spans = record_spans
        if ring_capacity is not None:
            self.ring_capacity = ring_capacity
        obs_config.register(self)
        return self

    def disable(self):
        """Stop recording; already-captured events are kept."""
        self.enabled = False
        return self

    # -- raw event recording ----------------------------------------------

    def _append(self, event):
        events = self._events
        capacity = self.ring_capacity
        if capacity is not None and len(events) >= capacity:
            events.popleft()
            self.dropped_events += 1
        events.append(event)

    def instant(self, name, cat, track="main", args=None):
        """Record a point event at the current virtual time."""
        if not self.record_spans:
            return
        self._append(
            ("i", name, cat, track, self.engine.now * 1e6, 0.0, self._wall(), args)
        )

    def complete(self, name, cat, start_seconds, track="main", args=None):
        """Record a span from ``start_seconds`` (virtual) to now."""
        if not self.record_spans:
            return
        start_us = start_seconds * 1e6
        self._append(
            (
                "X",
                name,
                cat,
                track,
                start_us,
                self.engine.now * 1e6 - start_us,
                self._wall(),
                args,
            )
        )

    def counter_sample(self, name, values, track="counters"):
        """Record a counter sample (``values``: series name -> number)."""
        if not self.record_spans:
            return
        self._append(
            ("C", name, None, track, self.engine.now * 1e6, 0.0, self._wall(), values)
        )

    # -- decimated hot-path hooks ------------------------------------------

    def on_step(self, engine):
        """Called by ``Engine.step`` per dispatch (when enabled).

        Every ``step_sample_interval`` dispatches, emits one counter
        sample carrying the queue depth and the perf-counter deltas
        since the previous sample (``PerfCounters.delta``), so the
        timeline shows *where* the simulation spent its work.
        """
        self._step_countdown -= 1
        if self._step_countdown > 0:
            return
        self._step_countdown = self.step_sample_interval
        perf = engine.perf
        mark = self._perf_mark
        self._perf_mark = perf.snapshot()
        if mark is None:
            delta = self._perf_mark
        else:
            delta = perf.delta(mark)
        self.counter_sample(
            "engine",
            {
                "pending_events": len(engine._queue),
                "events_dispatched": delta["events_dispatched"],
                "processes_resumed": delta["processes_resumed"],
                "ksm_pages_scanned": delta["ksm_pages_scanned"],
                "migration_pages": delta["migration_pages"],
            },
            track="engine",
        )

    def vm_exit(self, vm_name, reason, count, depth):
        """Account one VM-exit burst; emits an aggregated instant.

        Exits fire per syscall and would swamp the trace one-by-one, so
        each (VM, reason, depth) key accumulates until
        ``exit_sample_interval`` recordings, then flushes as a single
        ``vm_exit`` instant carrying the accumulated count.  The
        remainder flushes at export (:meth:`flush`).
        """
        key = (vm_name, reason, depth)
        pending = self._exit_pending.get(key)
        if pending is None:
            self._exit_pending[key] = pending = [0, 0.0]
        pending[0] += 1
        pending[1] += count
        if pending[0] >= self.exit_sample_interval:
            self._flush_exit(key, pending)

    def _flush_exit(self, key, pending):
        vm_name, reason, depth = key
        del self._exit_pending[key]
        self.metrics.counter("vm_exits", vm=vm_name, reason=reason.value).inc(
            pending[1]
        )
        self.instant(
            "vm_exit",
            "hypervisor",
            track=f"vm:{vm_name}",
            args={"reason": reason.value, "depth": depth, "count": pending[1]},
        )

    def flush(self):
        """Drain pending aggregations (call before reading events)."""
        for key in sorted(self._exit_pending, key=lambda k: (k[0], k[1].value, k[2])):
            self._flush_exit(key, self._exit_pending[key])
        # Mirror the engine's perf counters into the registry as gauges,
        # so metric dumps show the data-plane counters (page_store_*,
        # ksm_bucket_merges, dirty_words_scanned, ...) alongside the
        # tracepoint metrics.
        if self.enabled:
            gauge = self.metrics.gauge
            for name, value in self.engine.perf.as_dict().items():
                gauge(f"perf.{name}").set(value)
            # Ring-buffer drops would silently bias any analysis built
            # on this trace; surface them in every metric dump.
            gauge("trace.drops").set(self.dropped_events)

    # -- reading -----------------------------------------------------------

    def events(self):
        """All recorded events (after flushing aggregations)."""
        self.flush()
        return list(self._events)

    def clear(self):
        """Drop captured events and metrics (config stays)."""
        self._events.clear()
        self._exit_pending.clear()
        self._perf_mark = None
        self.dropped_events = 0
        self.metrics = MetricRegistry()

    def to_chrome(self, include_wall=False):
        """This tracer's events as a Chrome trace-event JSON object."""
        from repro.obs.export import chrome_trace

        return chrome_trace([self], include_wall=include_wall)

    def __repr__(self):
        state = "enabled" if self.enabled else "disabled"
        return (
            f"<Tracer {self.label or 'engine'} {state} "
            f"events={len(self._events)} dropped={self.dropped_events}>"
        )
