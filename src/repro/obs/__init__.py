"""repro.obs — virtual-time tracing, metrics, and timeline export.

The observability layer the perf and detection work measures itself
against:

* :class:`~repro.obs.trace.Tracer` — span/instant/counter recording on
  the virtual timeline (one per engine, ``engine.tracer``), guarded so
  a disabled tracer costs one attribute check at every seam;
* :class:`~repro.obs.metrics.MetricRegistry` — labelled counters,
  gauges, and log2-bucketed histograms (``tracer.metrics``);
* :mod:`~repro.obs.export` — Chrome/Perfetto trace JSON, deterministic
  metrics dumps, and the trace-schema validator;
* :mod:`~repro.obs.config` — process-wide defaults so CLI flags reach
  engines built deep inside scenario helpers;
* :mod:`~repro.obs.analysis` — offline span-tree reconstruction,
  critical-path and self-time attribution, per-tenant probe-overhead
  accounting, and collapsed-stack flamegraph export;
* :mod:`~repro.obs.history` — run-comparison regression engine and the
  append-only ``BENCH_history.jsonl`` ledger.

Quickstart::

    from repro import obs
    obs.configure(enabled=True)          # every new engine traces
    ... run a scenario ...
    obs.write_chrome_trace("trace.json") # open in ui.perfetto.dev
    obs.reset()
"""

from repro.obs.analysis import (
    TraceAnalysis,
    analyze_trace,
    write_collapsed_stacks,
)
from repro.obs.config import active_config, configure, register, reset, tracers
from repro.obs.history import (
    append_bench_history,
    bench_history_record,
    diff_history,
    diff_runs,
    flatten,
    format_diff,
    load_bench_history,
    write_diff_report,
)
from repro.obs.export import (
    chrome_trace,
    metrics_json,
    metrics_text,
    validate_trace,
    write_chrome_trace,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricRegistry
from repro.obs.trace import Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "TraceAnalysis",
    "Tracer",
    "active_config",
    "analyze_trace",
    "append_bench_history",
    "bench_history_record",
    "chrome_trace",
    "configure",
    "diff_history",
    "diff_runs",
    "flatten",
    "format_diff",
    "load_bench_history",
    "metrics_json",
    "metrics_text",
    "register",
    "reset",
    "tracers",
    "validate_trace",
    "write_chrome_trace",
    "write_collapsed_stacks",
    "write_diff_report",
]
