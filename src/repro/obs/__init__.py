"""repro.obs — virtual-time tracing, metrics, and timeline export.

The observability layer the perf and detection work measures itself
against:

* :class:`~repro.obs.trace.Tracer` — span/instant/counter recording on
  the virtual timeline (one per engine, ``engine.tracer``), guarded so
  a disabled tracer costs one attribute check at every seam;
* :class:`~repro.obs.metrics.MetricRegistry` — labelled counters,
  gauges, and log2-bucketed histograms (``tracer.metrics``);
* :mod:`~repro.obs.export` — Chrome/Perfetto trace JSON, deterministic
  metrics dumps, and the trace-schema validator;
* :mod:`~repro.obs.config` — process-wide defaults so CLI flags reach
  engines built deep inside scenario helpers.

Quickstart::

    from repro import obs
    obs.configure(enabled=True)          # every new engine traces
    ... run a scenario ...
    obs.write_chrome_trace("trace.json") # open in ui.perfetto.dev
    obs.reset()
"""

from repro.obs.config import active_config, configure, register, reset, tracers
from repro.obs.export import (
    chrome_trace,
    metrics_json,
    metrics_text,
    validate_trace,
    write_chrome_trace,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricRegistry
from repro.obs.trace import Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "Tracer",
    "active_config",
    "chrome_trace",
    "configure",
    "metrics_json",
    "metrics_text",
    "register",
    "reset",
    "tracers",
    "validate_trace",
    "write_chrome_trace",
]
