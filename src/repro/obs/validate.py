"""Trace-schema validator CLI: ``python -m repro.obs.validate trace.json``.

Exit status 0 when the file parses as JSON and passes
:func:`repro.obs.export.validate_trace`; 1 otherwise, with one problem
per line on stderr.  ``--require NAME`` (repeatable) additionally
demands that at least one event name contains the given substring —
CI uses this to pin the tracepoint families a smoke trace must carry.
"""

import argparse
import json
import re
import sys

from repro.obs.export import validate_trace

_EVENT_INDEX = re.compile(r"traceEvents\[(\d+)\]")


def first_offending_event(trace, problems):
    """The ``(index, event)`` behind the first indexed problem, if any."""
    for problem in problems:
        match = _EVENT_INDEX.search(problem)
        if match:
            index = int(match.group(1))
            events = trace.get("traceEvents")
            if isinstance(events, list) and 0 <= index < len(events):
                return index, events[index]
    return None


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", help="trace JSON file to validate")
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="NAME",
        help="require an event whose name contains NAME (repeatable)",
    )
    args = parser.parse_args(argv)
    try:
        with open(args.path) as handle:
            trace = json.load(handle)
    except (OSError, ValueError) as error:
        print(f"{args.path}: {error}", file=sys.stderr)
        return 1
    problems = validate_trace(trace, require_names=args.require)
    if problems:
        for problem in problems:
            print(f"{args.path}: {problem}", file=sys.stderr)
        offender = first_offending_event(trace, problems)
        if offender is not None:
            index, event = offender
            print(
                f"{args.path}: first offending event "
                f"traceEvents[{index}] = {json.dumps(event, sort_keys=True)}",
                file=sys.stderr,
            )
        return 1
    count = len(trace["traceEvents"])
    print(f"{args.path}: ok ({count} events)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
