"""Per-shard trace collection and deterministic merge.

A sharded run (:mod:`repro.sim.shard`) replicates the control plane in
every worker, but each worker only *simulates* the hosts it owns — so
each worker's tracer holds the authoritative span rows for its own
hosts and replicated (duplicate) rows for everything control-level.
Before the fin barrier every non-zero shard ships its owned rows to
shard 0, which splices them into its own tracer:

* **host-scoped tracks** (``host:h07``, ``ksm:h07``, any
  ``prefix:hostname`` row) belong to exactly one shard; shard 0 drops
  its frozen-replica copies and takes the owner's stream verbatim;
* **tenant-scoped tracks** (``vm:t003``, ``migrate:t003``) follow the
  tenant's *placement*: warm-phase rows are fork-replicated
  bit-identically in every shard while branch-phase rows exist only on
  the owner of the tenant's host, so the merge unions them by content
  with max multiplicity — replicated rows collapse to one copy, owner
  rows survive;
* control-level tracks (``fleet``, ``faults``, ``engine``, ...) are
  kept from shard 0 only — every replica recorded the same spans, and
  shard 0's copy is the one whose wall-clock column means anything;
* the merged buffer is re-sorted on **emission time** — a duration
  (``X``) row is appended when the span *ends* but carries its start
  timestamp, so its key is ``ts + dur`` — with ``(shard index,
  arrival order)`` as the deterministic tiebreak.  With one shard the
  sort is the identity, matching the serial append order.

The merged stream is deterministic for a given plan but not
byte-identical to the serial trace: rows whose args embed
engine-global counter snapshots (the ``engine`` counter samples,
per-sweep ``ksm_pages_scanned`` attributions) report each shard's
local view, and same-timestamp rows at the exact control-end instant
may fall on either side of the final event's heap tiebreak.  Metric
registries are *not* merged at all: control-level counters are already
complete in shard 0 (replicated increments), and folding in remote
owner-side counters would double-count everything control-level.
Owner-side-only series (per-tenant ``detect.probe_seconds``) therefore
cover shard 0's hosts only in a sharded run — documented in
INTERNALS §14.
"""

from collections import deque

#: Tracer tuple fields (see ``Tracer._append`` — all event kinds share
#: the 8-tuple shape ``(kind, name, cat, track, ts, dur, wall, args)``).
_KIND_INDEX = 0
_TRACK_INDEX = 3
_TS_INDEX = 4
_DUR_INDEX = 5


def host_of_track(track):
    """The ``prefix:suffix`` scope suffix of a track row, or None.

    Host- and tenant-scoped rows follow the ``prefix:name`` convention
    (``ksm:h03``, ``vm:t007``); single-word rows (``fleet``,
    ``engine``) are control-level.
    """
    if not isinstance(track, str) or ":" not in track:
        return None
    return track.rsplit(":", 1)[1]


def _emission_key(event):
    """Virtual time at which the tracer appended this row."""
    ts = event[_TS_INDEX]
    if event[_KIND_INDEX] == "X":
        return ts + event[_DUR_INDEX]
    return ts


def collect_shard_events(tracer, owned_hosts, all_hosts):
    """This shard's shippable rows: owned-host tracks plus every
    tenant-scoped track (classified as scoped-but-not-a-host-name)."""
    owned = set(owned_hosts)
    hosts = set(all_hosts)
    out = []
    for event in tracer.events():
        scope = host_of_track(event[_TRACK_INDEX])
        if scope is None:
            continue
        if scope in owned or scope not in hosts:
            out.append(event)
    return out


def merge_shard_events(tracer, shard_events, all_hosts, scope_owner=None):
    """Splice per-shard event lists into shard 0's tracer.

    ``shard_events`` maps shard index -> event list (as produced by
    :func:`collect_shard_events`); ``all_hosts`` is the full host
    inventory, used to tell host-scoped from tenant-scoped tracks.
    ``scope_owner`` maps tenant-track scopes (``t003``, ``gx-t003``)
    to the shard that owns the tenant's final placement — rows on
    those tracks come from the owner only, like host tracks (the
    frozen replicas flush stale counters for foreign tenants at
    end-of-run).  Scopes not in the map (tenants deleted before the
    fork) fall back to the content-dedupe union.  Returns the merged
    row count.
    """
    hosts = set(all_hosts)
    scope_owner = scope_owner or {}
    foreign_hosts = set()
    for events in shard_events.values():
        for event in events:
            scope = host_of_track(event[_TRACK_INDEX])
            if scope in hosts:
                foreign_hosts.add(scope)

    # (emission ts, shard, order, event) for every kept row.  Tenant
    # tracks union by content with max multiplicity: a row repeated n
    # times within one shard is genuine n times, but the same row seen
    # again in a later shard is the fork-replicated copy.  Shard 0 is
    # processed first so replicated rows keep its arrival order.
    tagged = []
    kept = {}  # repr(event) -> multiplicity already contributed

    def add_rows(shard_index, events):
        within = {}
        for order, event in enumerate(events):
            scope = host_of_track(event[_TRACK_INDEX])
            if scope is None or scope in hosts:
                if shard_index == 0 and scope in foreign_hosts:
                    continue  # frozen-replica copy; the owner ships it
                tagged.append(
                    (_emission_key(event), shard_index, order, event)
                )
                continue
            owner = scope_owner.get(scope)
            if owner is not None:
                if shard_index == owner:
                    tagged.append(
                        (_emission_key(event), shard_index, order, event)
                    )
                continue
            # Content key without the wall-clock column: replicas emit
            # the same row at different wall times (end-of-run counter
            # flushes happen post-fork in every replica).
            mark = repr(event[:6]) + repr(event[7])
            within[mark] = within.get(mark, 0) + 1
            if within[mark] > kept.get(mark, 0):
                kept[mark] = within[mark]
                tagged.append(
                    (_emission_key(event), shard_index, order, event)
                )

    add_rows(0, list(tracer.events()))
    for shard_index in sorted(shard_events):
        add_rows(shard_index, shard_events[shard_index])
    tagged.sort(key=lambda item: item[:3])
    tracer._events = deque(event for _ts, _shard, _order, event in tagged)
    return len(tagged)
