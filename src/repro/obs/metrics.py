"""The metric registry: named counters, gauges, and latency histograms.

Metrics complement the trace timeline (:mod:`repro.obs.trace`): a trace
answers *when did it happen*, a metric answers *how often and how was it
distributed*.  Every metric is identified by a name plus a sorted label
set (``histogram("detect.write_fault_us", phase="t1")``), so per-VM and
per-host series coexist in one registry without string formatting on
the hot path.

Histograms are log2-bucketed: a recorded value lands in the bucket
whose upper bound is the smallest power of two above it.  That gives
the three-orders-of-magnitude spread of the paper's write-fault
latencies (sub-µs private writes vs hundreds-of-µs CoW breaks, Figs
5/6) a compact fixed-cost representation — recording is one
``frexp`` + dict increment, never a list append.

Everything renders deterministically: ``as_dict`` and ``format`` sort
by metric key, histogram buckets by bound, so two identical-seed runs
dump byte-identical metrics.
"""

import math


def _label_key(labels):
    """Canonical hashable form of a label dict (sorted item tuple)."""
    if not labels:
        return ()
    return tuple(sorted(labels.items()))


def _metric_name(name, label_key):
    if not label_key:
        return name
    inner = ",".join(f"{k}={v}" for k, v in label_key)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self):
        self.value = 0

    def inc(self, amount=1):
        self.value += amount

    def as_value(self):
        return self.value


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self):
        self.value = 0

    def set(self, value):
        self.value = value

    def as_value(self):
        return self.value


class Histogram:
    """A log2-bucketed distribution of non-negative samples.

    Bucket ``i`` covers ``(2**(i-1), 2**i]``; zero (and negative,
    clamped) samples land in a dedicated ``0`` bucket.  Alongside the
    buckets the exact ``count``/``total``/``min``/``max`` are kept, so
    medians read off the buckets while sums stay lossless.
    """

    __slots__ = ("buckets", "count", "total", "min", "max")
    kind = "histogram"

    def __init__(self):
        self.buckets = {}
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def record(self, value):
        """Record one sample."""
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value <= 0.0:
            index = None
        else:
            mantissa, exponent = math.frexp(value)
            # frexp: value = mantissa * 2**exponent with mantissa in
            # [0.5, 1); an exact power of two belongs to its own bucket.
            index = exponent if mantissa != 0.5 else exponent - 1
        self.buckets[index] = self.buckets.get(index, 0) + 1

    def record_many(self, values):
        """Record an iterable of samples."""
        for value in values:
            self.record(value)

    def bucket_bounds(self):
        """Sorted ``(upper_bound, count)`` pairs; bound 0 is the zero
        bucket."""
        pairs = []
        for index, count in self.buckets.items():
            bound = 0.0 if index is None else float(2.0**index)
            pairs.append((bound, count))
        return sorted(pairs)

    def quantile(self, q):
        """Approximate quantile from the buckets (upper-bound biased)."""
        if self.count == 0:
            return None
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile out of range: {q}")
        target = q * self.count
        seen = 0
        for bound, count in self.bucket_bounds():
            seen += count
            if seen >= target:
                return bound
        return self.max

    def as_value(self):
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": {f"le_{bound:g}": n for bound, n in self.bucket_bounds()},
        }


class MetricRegistry:
    """Get-or-create registry of labelled metrics.

    One registry per :class:`~repro.obs.trace.Tracer` (so per engine);
    lookups are a dict get on ``(name, sorted labels)``, cheap enough
    to sit behind the tracer's enabled check on hot paths.
    """

    def __init__(self):
        self._metrics = {}

    def _get(self, factory, name, labels):
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory()
            self._metrics[key] = metric
        elif not isinstance(metric, factory):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def counter(self, name, **labels):
        return self._get(Counter, name, labels)

    def gauge(self, name, **labels):
        return self._get(Gauge, name, labels)

    def histogram(self, name, **labels):
        return self._get(Histogram, name, labels)

    def values(self, name):
        """All series of one metric name: ``{label_dict_items: value}``.

        Returns sorted ``(labels, value)`` pairs where ``labels`` is the
        canonical sorted item tuple — the matrix runner uses this to
        pull per-tenant series without parsing rendered names.
        """
        return [
            (label_key, metric.as_value())
            for (metric_name, label_key), metric in sorted(
                self._metrics.items()
            )
            if metric_name == name
        ]

    def __len__(self):
        return len(self._metrics)

    def __iter__(self):
        """Yield ``(rendered_name, metric)`` sorted by rendered name."""
        pairs = [
            (_metric_name(name, label_key), metric)
            for (name, label_key), metric in self._metrics.items()
        ]
        return iter(sorted(pairs, key=lambda pair: pair[0]))

    def as_dict(self):
        """Deterministic ``{rendered_name: value}`` dump (JSON-ready)."""
        return {
            name: {"kind": metric.kind, "value": metric.as_value()}
            for name, metric in self
        }

    def format(self, indent="  "):
        """Human-readable multi-line rendering for ``--metrics``."""
        lines = []
        for name, metric in self:
            if metric.kind == "histogram":
                lines.append(
                    f"{indent}{name}  count={metric.count} "
                    f"sum={metric.total:.6g} min={metric.min:.6g} "
                    f"max={metric.max:.6g} p50~{metric.quantile(0.5):.6g}"
                    if metric.count
                    else f"{indent}{name}  count=0"
                )
            else:
                lines.append(f"{indent}{name}  {metric.as_value():g}")
        return "\n".join(lines)
