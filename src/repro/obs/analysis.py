"""Trace analytics: span trees, critical paths, and overhead attribution.

PR 3's tracer produces a flat firehose of Chrome trace events; this
module turns it into answers.  Everything operates on the *exported*
trace shape (the JSON object :func:`~repro.obs.export.chrome_trace`
writes), so a trace analyzed five minutes or five months after the run
gives byte-identical results — analysis never touches a live engine and
therefore adds zero engine-side overhead.

Three layers:

* **Span trees** — complete spans (``ph="X"``) on one (process, track)
  row nest by virtual-time interval containment.  Each
  :class:`Span` knows its children, its *total* time (the span
  duration) and its *self* time (duration minus children), the same
  split a CPU profiler reports.
* **Critical path** — from any root span, repeatedly descend into the
  longest child: the chain of spans that bounds the run's virtual-time
  latency (a migration's iterations, the detector's t0/t1/t2 phases).
* **Overhead attribution** — the paper's Figs 5/6 axis as a queryable
  number: per-tenant guest virtual time consumed by detector probes
  (``detect.probe`` spans carry their tenant; standalone detection runs
  fall back to ``detect.run`` keyed by track).  The attribution is
  conservative by construction: every probe span lands in exactly one
  tenant bucket, and the per-tenant totals sum (``math.fsum``) to the
  total detector virtual time.

All sums use :func:`math.fsum` so aggregates are independent of
iteration order, and every dict renders sorted — two analyses of the
same trace are byte-identical.
"""

import json
import math

#: Containment slack in virtual microseconds (1 ns): span ends are
#: computed as ``now*1e6 - start_us``, so ``start + dur`` can differ
#: from the recorded end by one ulp.
_EPS_US = 1e-3

#: Span names that attribute detector probe time to a tenant.
PROBE_SPAN = "detect.probe"
#: Fallback when no per-tenant probes exist (standalone Fig 5/6 runs).
DETECTOR_SPAN = "detect.run"


class Span:
    """One complete span, with its nested children resolved."""

    __slots__ = (
        "name",
        "cat",
        "process",
        "track",
        "start_us",
        "dur_us",
        "args",
        "children",
        "depth",
    )

    def __init__(self, name, cat, process, track, start_us, dur_us, args):
        self.name = name
        self.cat = cat
        self.process = process
        self.track = track
        self.start_us = start_us
        self.dur_us = dur_us
        self.args = args or {}
        self.children = []
        self.depth = 0

    @property
    def end_us(self):
        return self.start_us + self.dur_us

    @property
    def self_us(self):
        """Duration not covered by child spans (clamped at zero)."""
        if not self.children:
            return self.dur_us
        covered = math.fsum(child.dur_us for child in self.children)
        return max(0.0, self.dur_us - covered)

    def walk(self):
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def contains(self, other):
        return (
            other.start_us >= self.start_us - _EPS_US
            and other.end_us <= self.end_us + _EPS_US
        )

    def __repr__(self):
        return (
            f"<Span {self.name} @{self.start_us:.1f}us "
            f"dur={self.dur_us:.1f}us children={len(self.children)}>"
        )


def _build_tree(spans):
    """Interval-nest a track's spans; returns the root spans.

    ``spans`` arrive in recording order (completion order).  Sorting by
    (start, -duration, -sequence) puts enclosing spans before the spans
    they contain — for exact (start, dur) twins the later-recorded one
    completed later and is therefore the outer span.
    """
    ordered = sorted(
        enumerate(spans),
        key=lambda pair: (pair[1].start_us, -pair[1].dur_us, -pair[0]),
    )
    roots = []
    stack = []
    for _seq, span in ordered:
        while stack and not stack[-1].contains(span):
            stack.pop()
        if stack:
            span.depth = stack[-1].depth + 1
            stack[-1].children.append(span)
        else:
            roots.append(span)
        stack.append(span)
    return roots


class TraceAnalysis:
    """Span trees plus derived analytics for one exported trace."""

    def __init__(self, trace):
        if not isinstance(trace, dict) or "traceEvents" not in trace:
            raise ValueError(
                "expected a Chrome trace object with a traceEvents array"
            )
        self.dropped_events = trace.get("otherData", {}).get(
            "dropped_events", 0
        )
        process_names = {}
        track_names = {}
        raw_spans = {}
        self.instant_counts = {}
        self.counter_samples = 0
        min_ts = None
        max_ts = None
        for event in trace["traceEvents"]:
            ph = event.get("ph")
            if ph == "M":
                if event.get("name") == "process_name":
                    process_names[event["pid"]] = event["args"]["name"]
                elif event.get("name") == "thread_name":
                    track_names[(event["pid"], event["tid"])] = event[
                        "args"
                    ]["name"]
                continue
            ts = event.get("ts", 0.0)
            end = ts + event.get("dur", 0.0) if ph == "X" else ts
            min_ts = ts if min_ts is None else min(min_ts, ts)
            max_ts = end if max_ts is None else max(max_ts, end)
            if ph == "X":
                raw_spans.setdefault(
                    (event["pid"], event["tid"]), []
                ).append(event)
            elif ph == "i":
                name = event.get("name", "?")
                self.instant_counts[name] = (
                    self.instant_counts.get(name, 0) + 1
                )
            elif ph == "C":
                self.counter_samples += 1
        self.window_us = (min_ts or 0.0, max_ts or 0.0)
        #: ``{(process_label, track_name): [root spans]}``
        self.tracks = {}
        self.span_count = 0
        for (pid, tid), events in raw_spans.items():
            process = process_names.get(pid, f"engine-{pid}")
            track = track_names.get((pid, tid), f"track-{tid}")
            spans = [
                Span(
                    event.get("name", "?"),
                    event.get("cat"),
                    process,
                    track,
                    event.get("ts", 0.0),
                    event.get("dur", 0.0),
                    event.get("args"),
                )
                for event in events
            ]
            self.span_count += len(spans)
            self.tracks[(process, track)] = _build_tree(spans)

    # -- construction -------------------------------------------------------

    @classmethod
    def from_file(cls, path):
        with open(path, "r", encoding="utf-8") as handle:
            return cls(json.load(handle))

    @classmethod
    def from_tracers(cls, tracers=None):
        """Analyze live tracers through the canonical export shape."""
        from repro.obs.export import chrome_trace

        return cls(chrome_trace(tracers))

    # -- iteration ----------------------------------------------------------

    def spans(self):
        """Every span, depth-first, tracks in sorted order."""
        for key in sorted(self.tracks):
            for root in self.tracks[key]:
                yield from root.walk()

    # -- self/total attribution --------------------------------------------

    def attribution(self):
        """Self/total virtual time per track, per span name, per category.

        Per-track ``total_us`` is the sum of *root* spans only (nested
        work is not double-counted); ``self_us`` sums every span's self
        time, which equals the root total when children tile their
        parents exactly and is smaller when gaps exist.
        """
        by_track = {}
        by_name = {}
        by_category = {}
        for (process, track), roots in sorted(self.tracks.items()):
            totals = []
            selfs = []
            count = 0
            for root in roots:
                totals.append(root.dur_us)
                for span in root.walk():
                    selfs.append(span.self_us)
                    count += 1
                    entry = by_name.setdefault(
                        span.name, {"count": 0, "total": [], "self": []}
                    )
                    entry["count"] += 1
                    entry["total"].append(span.dur_us)
                    entry["self"].append(span.self_us)
                    if span.cat:
                        cat = by_category.setdefault(
                            span.cat, {"count": 0, "self": []}
                        )
                        cat["count"] += 1
                        cat["self"].append(span.self_us)
            by_track[f"{process}/{track}"] = {
                "spans": count,
                "total_us": math.fsum(totals),
                "self_us": math.fsum(selfs),
            }
        return {
            "by_track": by_track,
            "by_name": {
                name: {
                    "count": entry["count"],
                    "total_us": math.fsum(entry["total"]),
                    "self_us": math.fsum(entry["self"]),
                }
                for name, entry in sorted(by_name.items())
            },
            "by_category": {
                cat: {
                    "count": entry["count"],
                    "self_us": math.fsum(entry["self"]),
                }
                for cat, entry in sorted(by_category.items())
            },
        }

    # -- critical path ------------------------------------------------------

    def critical_path(self, track=None):
        """The longest-child chain from the heaviest root span.

        ``track`` selects a ``process/track`` row (substring match, the
        first sorted hit wins); without it the row with the largest
        root-span total is analyzed.  Returns ``None`` when the trace
        holds no spans.
        """
        candidates = []
        for (process, trk), roots in sorted(self.tracks.items()):
            if not roots:
                continue
            label = f"{process}/{trk}"
            if track is not None and track not in label:
                continue
            candidates.append(
                (math.fsum(root.dur_us for root in roots), label, roots)
            )
        if not candidates:
            return None
        # Heaviest row wins; ties resolve by label so the choice is
        # deterministic across runs.
        _total, label, roots = max(
            candidates, key=lambda item: (item[0], item[1])
        )
        node = max(roots, key=lambda span: (span.dur_us, -span.start_us))
        segments = []
        while node is not None:
            segments.append(
                {
                    "name": node.name,
                    "depth": node.depth,
                    "start_us": node.start_us,
                    "dur_us": node.dur_us,
                    "self_us": node.self_us,
                }
            )
            if not node.children:
                break
            node = max(
                node.children,
                key=lambda span: (span.dur_us, -span.start_us),
            )
        return {
            "track": label,
            "total_us": segments[0]["dur_us"],
            "segments": segments,
        }

    # -- probe-overhead attribution ----------------------------------------

    def probe_overhead(self):
        """Per-tenant detector-probe time vs the guest's virtual window.

        Collects every ``detect.probe`` span and buckets its duration
        under ``args["tenant"]``; traces without per-tenant probes (the
        standalone Fig 5/6 protocol) fall back to ``detect.run`` spans
        bucketed by their track.  ``total_probe_us`` and
        ``detector_total_us`` are fsum'd over the same span population,
        so the per-tenant attribution conserves the scenario's total
        detector virtual time exactly.
        """
        per_tenant = {}
        probes = [
            span for span in self.spans() if span.name == PROBE_SPAN
        ]
        fallback = not probes
        if fallback:
            probes = [
                span for span in self.spans() if span.name == DETECTOR_SPAN
            ]
        for span in probes:
            if fallback:
                tenant = f"{span.process}/{span.track}"
            else:
                tenant = span.args.get(
                    "tenant", f"{span.process}/{span.track}"
                )
            per_tenant.setdefault(tenant, []).append(span.dur_us)
        detector_spans = (
            probes
            if fallback
            else [span for span in self.spans() if span.name == DETECTOR_SPAN]
        )
        window_us = self.window_us[1] - self.window_us[0]
        tenants = {}
        for tenant, durations in sorted(per_tenant.items()):
            probe_us = math.fsum(durations)
            tenants[tenant] = {
                "probes": len(durations),
                "probe_us": probe_us,
                "overhead_pct": (
                    100.0 * probe_us / window_us if window_us > 0 else 0.0
                ),
            }
        by_probe = {}
        if not fallback:
            # Catalog sweeps label each span with its probe name; traces
            # from before the probe catalog simply have no buckets here.
            for span in probes:
                probe_name = span.args.get("probe")
                if probe_name is None:
                    continue
                bucket = by_probe.setdefault(
                    probe_name, {"probes": 0, "probe_us": []}
                )
                bucket["probes"] += 1
                bucket["probe_us"].append(span.dur_us)
            by_probe = {
                name: {
                    "probes": bucket["probes"],
                    "probe_us": math.fsum(bucket["probe_us"]),
                }
                for name, bucket in sorted(by_probe.items())
            }
        return {
            "source": DETECTOR_SPAN if fallback else PROBE_SPAN,
            "window_us": window_us,
            "tenants": tenants,
            "by_probe": by_probe,
            "total_probe_us": math.fsum(
                duration
                for _tenant, durations in sorted(per_tenant.items())
                for duration in durations
            ),
            "detector_total_us": math.fsum(
                span.dur_us for span in detector_spans
            ),
            "overhead_pct": (
                100.0
                * math.fsum(
                    duration
                    for durations in per_tenant.values()
                    for duration in durations
                )
                / window_us
                if window_us > 0
                else 0.0
            ),
        }

    # -- flamegraph export --------------------------------------------------

    def collapsed_stacks(self):
        """Collapsed-stack lines (``a;b;c value``) for flamegraph tools.

        One line per distinct stack — process, track, then the span
        ancestry — valued by *self* time in integer virtual nanoseconds
        (flamegraph renderers want integers; nanoseconds keep sub-µs
        probe writes visible).  Lines sort lexically, so two analyses
        of the same trace emit byte-identical files.
        """
        stacks = {}

        def descend(span, prefix):
            frames = prefix + (span.name,)
            weight = int(round(span.self_us * 1000.0))
            if weight > 0:
                key = ";".join(frames)
                stacks[key] = stacks.get(key, 0) + weight
            for child in span.children:
                descend(child, frames)

        for (process, track), roots in sorted(self.tracks.items()):
            for root in roots:
                descend(root, (process, track))
        return [f"{stack} {value}" for stack, value in sorted(stacks.items())]

    # -- the diffable summary ----------------------------------------------

    def summary(self):
        """Deterministic scalar summary — the ``obs diff`` surface."""
        return {
            "events": {
                "spans": self.span_count,
                "instants": sum(self.instant_counts.values()),
                "counter_samples": self.counter_samples,
                "dropped": self.dropped_events,
            },
            "window_us": {
                "start": self.window_us[0],
                "end": self.window_us[1],
            },
            "instants": dict(sorted(self.instant_counts.items())),
            "attribution": self.attribution(),
            "critical_path": self.critical_path(),
            "probe_overhead": self.probe_overhead(),
        }

    def format(self, top=12):
        """Human-readable report for ``repro obs report``."""
        att = self.attribution()
        overhead = self.probe_overhead()
        window = self.window_us[1] - self.window_us[0]
        lines = [
            f"trace: {self.span_count} spans, "
            f"{sum(self.instant_counts.values())} instants, "
            f"{self.counter_samples} counter samples, "
            f"{self.dropped_events} dropped",
            f"virtual window: {window / 1e6:.3f}s",
            "",
            "top span names by self time:",
        ]
        by_self = sorted(
            att["by_name"].items(),
            key=lambda item: (-item[1]["self_us"], item[0]),
        )
        for name, entry in by_self[:top]:
            lines.append(
                f"  {name:<28} count={entry['count']:<6} "
                f"self={entry['self_us'] / 1e6:.3f}s "
                f"total={entry['total_us'] / 1e6:.3f}s"
            )
        lines.append("")
        lines.append("tracks:")
        for label, entry in sorted(att["by_track"].items()):
            lines.append(
                f"  {label:<32} spans={entry['spans']:<6} "
                f"total={entry['total_us'] / 1e6:.3f}s"
            )
        lines.append("")
        lines.append(
            f"probe overhead ({overhead['source']}): "
            f"{overhead['total_probe_us'] / 1e6:.3f}s of "
            f"{overhead['window_us'] / 1e6:.3f}s "
            f"({overhead['overhead_pct']:.2f}%)"
        )
        for tenant, entry in sorted(overhead["tenants"].items()):
            lines.append(
                f"  {tenant:<24} probes={entry['probes']:<4} "
                f"{entry['probe_us'] / 1e6:.4f}s "
                f"({entry['overhead_pct']:.3f}%)"
            )
        path = self.critical_path()
        if path is not None:
            lines.append("")
            lines.append(
                f"critical path [{path['track']}] "
                f"{path['total_us'] / 1e6:.3f}s:"
            )
            for segment in path["segments"]:
                indent = "  " * (segment["depth"] + 1)
                lines.append(
                    f"{indent}{segment['name']} "
                    f"dur={segment['dur_us'] / 1e6:.3f}s "
                    f"self={segment['self_us'] / 1e6:.3f}s"
                )
        return "\n".join(lines)


def analyze_trace(path):
    """Load + analyze a Chrome trace JSON file."""
    return TraceAnalysis.from_file(path)


def write_collapsed_stacks(path, analysis):
    """Write the flamegraph collapsed-stack file; returns line count."""
    lines = analysis.collapsed_stacks()
    with open(path, "w", encoding="utf-8") as handle:
        for line in lines:
            handle.write(line + "\n")
    return len(lines)
