"""``repro obs`` subcommands: report, diff, flame, critical-path.

All four operate *offline* on artifacts an earlier run wrote — a
Chrome trace JSON (``--trace-out``), a metrics dump (``--metrics-out``),
a saved summary (``obs report --json``), or the bench-history ledger —
so analysis never re-runs a scenario and adds zero engine-side
overhead.  Wired into the main parser by :func:`add_obs_commands`;
heavy imports stay inside the handlers.
"""

import json
import sys


def _load_document(path):
    """A diffable JSON document: traces are summarized, the rest pass
    through (metric dumps, saved summaries, bench reports)."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if isinstance(document, dict) and "traceEvents" in document:
        from repro.obs.analysis import TraceAnalysis

        return TraceAnalysis(document).summary()
    return document


def cmd_obs_report(args):
    from repro.obs.analysis import analyze_trace

    analysis = analyze_trace(args.trace)
    print(analysis.format(top=args.top))
    if args.json:
        document = analysis.summary()
        if args.metrics_in:
            with open(args.metrics_in, "r", encoding="utf-8") as handle:
                document["metrics"] = json.load(handle)
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"[obs] wrote summary to {args.json}", file=sys.stderr)
    return 0


def cmd_obs_diff(args):
    from repro.obs.history import (
        diff_history,
        diff_runs,
        format_diff,
        write_diff_report,
    )

    if args.history:
        report = diff_history(args.history, threshold_pct=args.threshold)
        if report is None:
            print(
                f"[obs] {args.history}: fewer than two ledger entries, "
                "nothing to diff",
                file=sys.stderr,
            )
            return 2
    else:
        if not (args.old and args.new):
            print(
                "[obs] diff needs two files (or --history LEDGER)",
                file=sys.stderr,
            )
            return 2
        report = diff_runs(
            _load_document(args.old),
            _load_document(args.new),
            threshold_pct=args.threshold,
            old_label=args.old,
            new_label=args.new,
        )
    print(format_diff(report))
    if args.report_out:
        write_diff_report(args.report_out, report)
        print(
            f"[obs] wrote regression report to {args.report_out}",
            file=sys.stderr,
        )
    return 0 if report["clean"] else 1


def cmd_obs_flame(args):
    from repro.obs.analysis import analyze_trace, write_collapsed_stacks

    analysis = analyze_trace(args.trace)
    if args.output:
        count = write_collapsed_stacks(args.output, analysis)
        print(f"[obs] wrote {count} stacks to {args.output}")
    else:
        for line in analysis.collapsed_stacks():
            print(line)
    return 0


def cmd_obs_critical_path(args):
    from repro.obs.analysis import analyze_trace

    analysis = analyze_trace(args.trace)
    path = analysis.critical_path(track=args.track)
    if path is None:
        where = f" matching {args.track!r}" if args.track else ""
        print(f"[obs] no spans{where} in {args.trace}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(path, indent=2, sort_keys=True))
        return 0
    print(
        f"critical path [{path['track']}] {path['total_us'] / 1e6:.3f}s "
        "virtual:"
    )
    for segment in path["segments"]:
        indent = "  " * (segment["depth"] + 1)
        print(
            f"{indent}{segment['name']} "
            f"start={segment['start_us'] / 1e6:.3f}s "
            f"dur={segment['dur_us'] / 1e6:.3f}s "
            f"self={segment['self_us'] / 1e6:.3f}s"
        )
    return 0


def add_obs_commands(subparsers):
    """Register the ``obs`` subcommand tree on the main parser."""
    obs = subparsers.add_parser(
        "obs",
        help="trace analytics: report, diff, flame, critical-path",
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)

    report = obs_sub.add_parser(
        "report",
        help="span-tree summary of a trace: attribution, critical path, "
        "probe overhead",
    )
    report.add_argument("trace", help="Chrome trace JSON (--trace-out)")
    report.add_argument(
        "--metrics",
        # Own dest: the root parser's global --metrics is a store_true
        # that would make main() enable tracing for this offline command.
        dest="metrics_in",
        metavar="PATH",
        help="metrics dump (--metrics-out) to embed in the --json summary",
    )
    report.add_argument(
        "--json",
        metavar="PATH",
        help="write the deterministic summary JSON (the `obs diff` input)",
    )
    report.add_argument(
        "--top",
        type=int,
        default=12,
        metavar="N",
        help="span names to show in the self-time table",
    )
    report.set_defaults(func=cmd_obs_report)

    diff = obs_sub.add_parser(
        "diff",
        help="regression-diff two traces/summaries/metric dumps "
        "(exit 1 on drift)",
    )
    diff.add_argument(
        "old", nargs="?", default=None, help="baseline trace/summary JSON"
    )
    diff.add_argument(
        "new", nargs="?", default=None, help="candidate trace/summary JSON"
    )
    diff.add_argument(
        "--threshold",
        type=float,
        default=0.0,
        metavar="PCT",
        help="relative drift (percent) numeric values may move before "
        "they regress (default 0: byte-identical)",
    )
    diff.add_argument(
        "--history",
        metavar="LEDGER",
        help="diff the last two entries of a BENCH_history.jsonl ledger "
        "instead of two files",
    )
    diff.add_argument(
        "--report-out",
        metavar="PATH",
        help="write the machine-readable regression report to PATH",
    )
    diff.set_defaults(func=cmd_obs_diff)

    flame = obs_sub.add_parser(
        "flame",
        help="collapsed-stack flamegraph export (self time, virtual ns)",
    )
    flame.add_argument("trace", help="Chrome trace JSON (--trace-out)")
    flame.add_argument(
        "-o",
        "--output",
        metavar="PATH",
        help="write the collapsed stacks to PATH (default: stdout)",
    )
    flame.set_defaults(func=cmd_obs_flame)

    critical = obs_sub.add_parser(
        "critical-path",
        help="longest-child chain from the heaviest root span",
    )
    critical.add_argument("trace", help="Chrome trace JSON (--trace-out)")
    critical.add_argument(
        "--track",
        metavar="NAME",
        help="restrict to process/track rows containing NAME",
    )
    critical.add_argument(
        "--json", action="store_true", help="print the path as JSON"
    )
    critical.set_defaults(func=cmd_obs_critical_path)
    return obs
