"""Process-wide observability configuration and the live-tracer registry.

Engines are created deep inside scenario helpers (``scenarios.testbed``,
``Datacenter``), far from the CLI flag that asked for a trace — so the
wiring is a process-global default: :func:`configure` flips the defaults
that every *subsequently created* :class:`~repro.obs.trace.Tracer`
adopts, and tracers that come up enabled register themselves here so
the CLI can export one merged trace at exit (``repro detect`` alone
builds two engines — the clean and the compromised host).

The global is deliberately narrow: it only seeds newly built tracers.
Tests and library callers that want tracing on one specific engine
call ``engine.tracer.enable()`` directly and never touch this module.
"""

_SENTINEL = object()


class ObsConfig:
    """Defaults a newly created tracer starts from."""

    __slots__ = (
        "enabled",
        "record_spans",
        "ring_capacity",
        "step_sample_interval",
        "exit_sample_interval",
    )

    def __init__(
        self,
        enabled=False,
        record_spans=True,
        ring_capacity=None,
        step_sample_interval=1024,
        exit_sample_interval=256,
    ):
        self.enabled = enabled
        self.record_spans = record_spans
        self.ring_capacity = ring_capacity
        self.step_sample_interval = step_sample_interval
        self.exit_sample_interval = exit_sample_interval


_active = ObsConfig()
_tracers = []


def active_config():
    """The configuration new tracers adopt."""
    return _active


def configure(
    enabled=_SENTINEL,
    record_spans=_SENTINEL,
    ring_capacity=_SENTINEL,
    step_sample_interval=_SENTINEL,
    exit_sample_interval=_SENTINEL,
):
    """Update the process-wide defaults; returns the active config."""
    for name, value in (
        ("enabled", enabled),
        ("record_spans", record_spans),
        ("ring_capacity", ring_capacity),
        ("step_sample_interval", step_sample_interval),
        ("exit_sample_interval", exit_sample_interval),
    ):
        if value is not _SENTINEL:
            setattr(_active, name, value)
    return _active


def reset():
    """Restore the disabled defaults and forget registered tracers."""
    global _active
    _active = ObsConfig()
    _tracers.clear()


def register(tracer):
    """Track an enabled tracer for end-of-run export (idempotent)."""
    if tracer not in _tracers:
        _tracers.append(tracer)


def tracers():
    """Enabled tracers in creation order."""
    return list(_tracers)
