"""Workload plumbing.

A workload is a simulation process driven by a generator.  Between
operations it (a) respects VM pause state — migration downtime and
auto-converge throttling must actually affect it — and (b) yields its
accumulated operation cost as a timeout.

Workloads are *snapshot-resumable* (see :mod:`repro.sim.snapshot`):
run-loop state lives on the instance rather than in generator locals,
and :meth:`Workload.__resume__` rebuilds a continuation generator for
an engine fork.  The pacing helper records which of its yields is in
flight so the rebuilt generator can splice back into a half-finished
pace.
"""

from repro.errors import GuestError


class WorkloadResult:
    """Outcome of one workload run."""

    def __init__(self, name, system_name):
        self.name = name
        self.system_name = system_name
        self.started_at = None
        self.finished_at = None
        self.metrics = {}
        self.stopped_early = False

    @property
    def elapsed(self):
        if self.started_at is None or self.finished_at is None:
            raise GuestError(f"workload {self.name} has not finished")
        return self.finished_at - self.started_at

    def __repr__(self):
        return f"<WorkloadResult {self.name}@{self.system_name} {self.metrics}>"


class _SchedulerRelease:
    """Process-completion callback freeing the workload's core slot.

    A class rather than a closure so engine snapshots rebind it to the
    *copied* workload and scheduler through the copy memo — a closure
    is atomic to :mod:`copy` and would keep pointing into the parent.
    """

    __slots__ = ("workload", "scheduler")

    def __init__(self, workload, scheduler):
        self.workload = workload
        self.scheduler = scheduler

    def __call__(self, _event):
        workload = self.workload
        if workload.cpu_bound and self.scheduler.is_busy(workload):
            self.scheduler.release(workload)


class Workload:
    """Base class: pacing helpers and start/stop control."""

    name = "workload"

    def __init__(self):
        self._stop_requested = False
        #: In-flight :meth:`_pace` yield: None, ("paused", cost), or
        #: ("timeout", cost).  Snapshot resume replays the pace tail
        #: from here.
        self._pace_point = None
        #: The System the current run targets (set by :meth:`run`).
        self._r_system = None

    #: Set False for workloads that mostly wait (idle) rather than burn
    #: CPU; they do not occupy a core slot.
    cpu_bound = True

    def start(self, system, **kwargs):
        """Run in the background; returns the engine Process.

        CPU-bound workloads occupy one scheduler slot for their
        lifetime, so co-resident busy guests stretch each other once
        the package's logical CPUs are oversubscribed.
        """
        scheduler = system.machine.scheduler
        if self.cpu_bound:
            scheduler.occupy(self)
        process = system.engine.process(
            self.run(system, **kwargs),
            name=f"{self.name}@{system.name}",
            resumable=self,
        )
        process.callbacks.append(_SchedulerRelease(self, scheduler))
        return process

    def stop(self):
        """Ask the workload to wind down at the next operation boundary."""
        self._stop_requested = True

    def run(self, system, **kwargs):
        raise NotImplementedError

    # -- snapshot resume protocol -------------------------------------------

    def __resume__(self):
        """Rebuild the run continuation for a forked engine.

        Called on the *copied* workload after a snapshot fork; returns
        a generator whose first yield is bare and side-effect-free (the
        copied pending event redelivers into it) and which then
        continues the run loop from the instance state.
        """
        if self._r_system is None:
            raise GuestError(f"workload {self.name} was never started")
        return self._body(self._r_system, resuming=True)

    def _body(self, system, resuming=False):
        raise GuestError(f"workload {self.name} is not snapshot-resumable")

    # -- helpers for subclasses ---------------------------------------------

    def _pace(self, system, cost):
        """Generator: wait out a pause (if any), then consume ``cost``.

        Reads ``system.qemu_vm`` dynamically — after a live migration
        the same guest System continues under a different VM (possibly
        at a different depth), and pacing must follow it.
        """
        vm = system.qemu_vm
        if vm is not None and vm.paused:
            self._pace_point = ("paused", cost)
            yield vm.wait_if_paused()
        if cost > 0:
            self._pace_point = ("timeout", cost)
            yield system.engine.timeout(cost)
        self._pace_point = None

    def _resume_pace(self, system):
        """Generator: splice back into an in-flight :meth:`_pace`.

        The first yield is bare — the copied pending event (pause wake
        or cost timeout) delivers into it exactly as it would have into
        the original pace generator — and the remainder replays the
        pace tail from the recorded point.
        """
        kind, cost = self._pace_point
        yield
        if kind == "paused" and cost > 0:
            self._pace_point = ("timeout", cost)
            yield system.engine.timeout(cost)
        self._pace_point = None

    def _begin(self, system):
        result = WorkloadResult(self.name, system.name)
        result.started_at = system.engine.now
        return result

    def _finish(self, system, result):
        result.finished_at = system.engine.now
        result.stopped_early = self._stop_requested
        return result
