"""Workload plumbing.

A workload is a simulation process driven by a generator.  Between
operations it (a) respects VM pause state — migration downtime and
auto-converge throttling must actually affect it — and (b) yields its
accumulated operation cost as a timeout.
"""

from repro.errors import GuestError


class WorkloadResult:
    """Outcome of one workload run."""

    def __init__(self, name, system_name):
        self.name = name
        self.system_name = system_name
        self.started_at = None
        self.finished_at = None
        self.metrics = {}
        self.stopped_early = False

    @property
    def elapsed(self):
        if self.started_at is None or self.finished_at is None:
            raise GuestError(f"workload {self.name} has not finished")
        return self.finished_at - self.started_at

    def __repr__(self):
        return f"<WorkloadResult {self.name}@{self.system_name} {self.metrics}>"


class Workload:
    """Base class: pacing helpers and start/stop control."""

    name = "workload"

    def __init__(self):
        self._stop_requested = False

    #: Set False for workloads that mostly wait (idle) rather than burn
    #: CPU; they do not occupy a core slot.
    cpu_bound = True

    def start(self, system, **kwargs):
        """Run in the background; returns the engine Process.

        CPU-bound workloads occupy one scheduler slot for their
        lifetime, so co-resident busy guests stretch each other once
        the package's logical CPUs are oversubscribed.
        """
        scheduler = system.machine.scheduler
        if self.cpu_bound:
            scheduler.occupy(self)
        process = system.engine.process(
            self.run(system, **kwargs), name=f"{self.name}@{system.name}"
        )

        def _release(_event):
            if self.cpu_bound and scheduler.is_busy(self):
                scheduler.release(self)

        process.callbacks.append(_release)
        return process

    def stop(self):
        """Ask the workload to wind down at the next operation boundary."""
        self._stop_requested = True

    def run(self, system, **kwargs):
        raise NotImplementedError

    # -- helpers for subclasses ---------------------------------------------

    def _pace(self, system, cost):
        """Generator: wait out a pause (if any), then consume ``cost``.

        Reads ``system.qemu_vm`` dynamically — after a live migration
        the same guest System continues under a different VM (possibly
        at a different depth), and pacing must follow it.
        """
        vm = system.qemu_vm
        if vm is not None and vm.paused:
            yield vm.wait_if_paused()
        if cost > 0:
            yield system.engine.timeout(cost)

    def _begin(self, system):
        result = WorkloadResult(self.name, system.name)
        result.started_at = system.engine.now
        return result

    def _finish(self, system, result):
        result.finished_at = system.engine.now
        result.stopped_early = self._stop_requested
        return result
