"""lmbench 3.0-a9 microbenchmark suites (paper Tables II-IV)."""

from repro.workloads.lmbench.arith import ARITH_OPS, LmbenchArith
from repro.workloads.lmbench.fs import FILE_SIZES_KB, LmbenchFileOps
from repro.workloads.lmbench.proc import PROC_OPS, LmbenchProc

__all__ = [
    "ARITH_OPS",
    "FILE_SIZES_KB",
    "LmbenchArith",
    "LmbenchFileOps",
    "LmbenchProc",
    "PROC_OPS",
]
