"""lmbench filesystem latency: file creations/deletions per second
(paper Table IV).

Creates and deletes batches of files at sizes 0K/1K/4K/10K, charging
metadata syscalls plus per-page page-cache writes.  Two calibration
constants model lmbench's own userspace loop overhead.

The paper's Table IV contains an anomaly: L2's 0K-file creation rate
collapses to 2,430/s (vs 121,718/s at L1) while every other cell stays
within ~10-35% of L1.  The paper does not explain it.  We reproduce it
as a *metadata-sync path*: at nesting depth >= 2, a metadata-only
create (no data pages) triggers a synchronous journal commit whose
nested-exit cost dominates — producing the same order-of-magnitude
collapse.  Creates that write data amortize the journal across the data
writeback and keep their cost.  This is a documented emulation of an
observed artifact, switchable off via ``emulate_l2_sync_anomaly=False``
(see EXPERIMENTS.md).
"""

from repro.workloads.base import Workload

FILE_SIZES_KB = (0, 1, 4, 10)

#: lmbench userspace loop overhead per create / per delete (seconds).
CREATE_LOOP_OVERHEAD = 2.35e-6
DELETE_LOOP_OVERHEAD = 0.75e-6
#: Page-cache teardown cost per page on delete.
PAGE_DROP_COST = 0.7e-6


def _pages_for_kb(size_kb):
    return (size_kb * 1024 + 4095) // 4096


class LmbenchFileOps(Workload):
    """`lat_fs`-style create/delete throughput measurement."""

    name = "lmbench-fs"

    def __init__(self, emulate_l2_sync_anomaly=True):
        super().__init__()
        self.emulate_l2_sync_anomaly = emulate_l2_sync_anomaly

    def run(self, system, files_per_size=1000):
        """Measure all sizes.

        Metrics: ``creations_per_s`` and ``deletions_per_s``, each a
        dict of size_kb -> rate.
        """
        result = self._begin(system)
        kernel = system.kernel
        creations = {}
        deletions = {}
        for size_kb in FILE_SIZES_KB:
            pages = _pages_for_kb(size_kb)
            create_total = 0.0
            delete_total = 0.0
            for _ in range(files_per_size):
                cost = kernel.syscall_cost("creat_meta")
                cost += kernel.syscall_cost("close", jitter=False)
                cost += CREATE_LOOP_OVERHEAD
                if pages:
                    cost += kernel.charge_syscalls("page_cache_write", pages)
                    cost += pages * 0.7e-6
                elif system.depth >= 2 and self.emulate_l2_sync_anomaly:
                    # The Table IV anomaly: metadata-only creates at L2
                    # hit a synchronous journal commit.
                    cost += kernel.syscall_cost("fsync_journal")
                create_total += cost
                dcost = kernel.syscall_cost("unlink_meta")
                dcost += DELETE_LOOP_OVERHEAD
                dcost += pages * PAGE_DROP_COST
                delete_total += dcost
            yield from self._pace(system, create_total + delete_total)
            creations[size_kb] = files_per_size / create_total
            deletions[size_kb] = files_per_size / delete_total
        result.metrics["creations_per_s"] = creations
        result.metrics["deletions_per_s"] = deletions
        return self._finish(system, result)
