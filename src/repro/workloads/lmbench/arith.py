"""lmbench arithmetic latencies (paper Table II).

Tight register-bound loops: virtualization costs them almost nothing,
because there are no exits and almost no TLB pressure.  The measured
bare-metal latencies (the paper's L0 row) are the native inputs; what
the guest rows show is the cost model's small ``mem_intensity``-scaled
CPU tax — about +3% at L2, matching the paper.
"""

from repro.workloads.base import Workload

#: Native per-op latencies in nanoseconds: the paper's L0 row.
ARITH_OPS = {
    "integer bit": 0.26,
    "integer add": 0.13,
    "integer div": 5.94,
    "integer mod": 6.37,
    "float add": 0.75,
    "float mul": 1.25,
    "float div": 3.31,
    "double add": 0.75,
    "double mul": 1.25,
    "double div": 5.06,
}

#: Effective TLB/memory sensitivity of lmbench's arithmetic loops.
ARITH_MEM_INTENSITY = 0.12
#: Iterations per measured op (drives the virtual time consumed).
LOOP_ITERATIONS = 1_000_000


class LmbenchArith(Workload):
    """`lat_ops`-style arithmetic latency measurement."""

    name = "lmbench-arith"

    def run(self, system, iterations=LOOP_ITERATIONS):
        """Measure every op; metric ``latencies_ns`` maps op -> ns."""
        result = self._begin(system)
        model = system.cost_model
        depth = system.depth
        latencies = {}
        for op, native_ns in ARITH_OPS.items():
            tax = model.cpu_tax_factor(depth, ARITH_MEM_INTENSITY)
            jittered = system.rng.gauss_jitter(
                f"arith:{system.name}:{op}", native_ns * tax, 0.004
            )
            latencies[op] = jittered
            # The measurement loop itself takes real (virtual) time.
            yield from self._pace(system, jittered * 1e-9 * iterations)
        result.metrics["latencies_ns"] = latencies
        return self._finish(system, result)
