"""lmbench process/IPC latencies (paper Table III).

Times the eight operations of the paper's table by actually charging
them through the guest kernel's syscall layer, averaged over many
repetitions.  Everything interesting here — pipe latency exploding 19x
at L2, fork costing the same at L0 and L1 but tripling at L2 — comes
from the exit profiles in :mod:`repro.guest.syscalls`, not from this
file.
"""

from repro.workloads.base import Workload

#: (table column label, syscall profile, repetitions per measurement)
PROC_OPS = (
    ("signal handler installation", "sig_install", 10000),
    ("signal handler overhead", "sig_handle", 10000),
    ("protection fault", "protection_fault", 5000),
    ("pipe latency", "pipe_latency", 2000),
    ("AF_UNIX sock stream latency", "af_unix_latency", 2000),
    ("fork+ exit", "fork_exit", 400),
    ("fork+ execve", "fork_execve", 400),
    ("fork+ /bin/sh -c", "fork_sh", 100),
)


class LmbenchProc(Workload):
    """`lat_sig` / `lat_pipe` / `lat_proc` measurements."""

    name = "lmbench-proc"

    def run(self, system, repetition_scale=1.0):
        """Measure every op; metric ``latencies_us`` maps label -> µs."""
        result = self._begin(system)
        kernel = system.kernel
        latencies = {}
        for label, profile, repetitions in PROC_OPS:
            count = max(int(repetitions * repetition_scale), 10)
            total = 0.0
            for _ in range(count):
                total += kernel.syscall_cost(profile)
            yield from self._pace(system, total)
            latencies[label] = total / count * 1e6
        result.metrics["latencies_us"] = latencies
        return self._finish(system, result)
