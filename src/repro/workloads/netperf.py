"""Netperf TCP_STREAM: bulk unidirectional transfer (paper Fig 3).

The client runs inside the measured system (L0 host, L1 guest, or L2
nested guest) and streams fixed-size messages to a netserver on a
separate machine across the physical wire.  Sends are pipelined: the
client is limited by its own sendmsg CPU cost, and deliveries by the
path — so the wire stays the bottleneck at every virtualization level,
which is precisely why the paper finds the three levels statistically
indistinguishable.
"""

from repro.workloads.base import Workload

NETSERVER_PORT = 12865
DEFAULT_MESSAGE_BYTES = 65536
DEFAULT_DURATION = 10.0


class NetperfServer:
    """netserver: accepts streams and counts delivered bytes."""

    def __init__(self, node):
        self.node = node
        self.bytes_received = 0
        self.listener = node.listen(NETSERVER_PORT, handler=self._on_connect)

    def _on_connect(self, connection):
        self.node.engine.process(
            self._sink(connection.server), name="netserver-sink"
        )

    def _sink(self, endpoint):
        from repro.sim.process import ChannelClosed

        try:
            while True:
                packet = yield endpoint.recv()
                self.bytes_received += packet.size_bytes
        except ChannelClosed:
            return


class NetperfWorkload(Workload):
    """TCP_STREAM from the measured system to a netserver node."""

    name = "netperf"

    def __init__(self, server):
        super().__init__()
        self.server = server

    def run(self, system, duration=DEFAULT_DURATION, message_bytes=DEFAULT_MESSAGE_BYTES):
        """One TCP_STREAM run; metric ``throughput_mbps``."""
        result = self._begin(system)
        kernel = system.kernel
        node = system.net_node
        endpoint = node.connect(self.server.node, NETSERVER_PORT)

        base = self.server.bytes_received
        deadline = system.engine.now + duration
        messages = 0
        #: TCP send-buffer window: this many messages may be in flight
        #: before the sender blocks — the backpressure that makes the
        #: client wire-bound rather than CPU-bound.
        window = 8
        last_delivery = None
        while system.engine.now < deadline and not self._stop_requested:
            cost = 0.0
            for _ in range(window):
                cost += kernel.syscall_cost("net_sendmsg")
                last_delivery = endpoint.send(None, size_bytes=message_bytes)
                messages += 1
            system.memory.dirty_bulk(window)
            yield from self._pace(system, cost)
            yield last_delivery
        elapsed = system.engine.now - result.started_at
        delivered = self.server.bytes_received - base
        endpoint.close()
        result.metrics["throughput_mbps"] = delivered * 8.0 / elapsed / 1e6
        result.metrics["messages"] = messages
        return self._finish(system, result)
