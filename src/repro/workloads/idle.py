"""The idle workload: a user connected to the cloud but inactive.

Not perfectly silent — a real idle Linux guest still runs timers,
journald and cron, dirtying a trickle of pages.  That trickle is what
keeps Fig 4's idle migration from converging in literally one round.
"""

from repro.workloads.base import Workload

#: Pages dirtied per second by background daemons on an idle guest.
IDLE_DIRTY_PAGES_PER_S = 40
#: How often the idle loop wakes.
TICK_SECONDS = 0.5


class IdleWorkload(Workload):
    """Background-noise-only guest activity."""

    name = "idle"
    cpu_bound = False

    def run(self, system, duration=None):
        """Idle for ``duration`` seconds (forever when None)."""
        self._r_system = system
        self._r_result = self._begin(system)
        self._r_deadline = (
            None if duration is None else system.engine.now + duration
        )
        self._r_ticks = 0
        return (yield from self._body(system))

    def _body(self, system, resuming=False):
        if resuming:
            yield from self._resume_pace(system)
            self._r_ticks += 1
        while not self._stop_requested:
            if (
                self._r_deadline is not None
                and system.engine.now >= self._r_deadline
            ):
                break
            cost = system.kernel.syscall_cost("context_switch")
            system.memory.dirty_bulk(int(IDLE_DIRTY_PAGES_PER_S * TICK_SECONDS))
            yield from self._pace(system, cost + TICK_SECONDS)
            self._r_ticks += 1
        self._r_result.metrics["ticks"] = self._r_ticks
        return self._finish(system, self._r_result)
