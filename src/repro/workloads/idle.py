"""The idle workload: a user connected to the cloud but inactive.

Not perfectly silent — a real idle Linux guest still runs timers,
journald and cron, dirtying a trickle of pages.  That trickle is what
keeps Fig 4's idle migration from converging in literally one round.
"""

from repro.workloads.base import Workload

#: Pages dirtied per second by background daemons on an idle guest.
IDLE_DIRTY_PAGES_PER_S = 40
#: How often the idle loop wakes.
TICK_SECONDS = 0.5


class IdleWorkload(Workload):
    """Background-noise-only guest activity."""

    name = "idle"
    cpu_bound = False

    def run(self, system, duration=None):
        """Idle for ``duration`` seconds (forever when None)."""
        result = self._begin(system)
        deadline = None if duration is None else system.engine.now + duration
        ticks = 0
        while not self._stop_requested:
            if deadline is not None and system.engine.now >= deadline:
                break
            cost = system.kernel.syscall_cost("context_switch")
            system.memory.dirty_bulk(int(IDLE_DIRTY_PAGES_PER_S * TICK_SECONDS))
            yield from self._pace(system, cost + TICK_SECONDS)
            ticks += 1
        result.metrics["ticks"] = ticks
        return self._finish(system, result)
