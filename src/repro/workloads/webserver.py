"""A request/response web service and its latency probe.

The paper's stealth argument (§III-A) is that the victim's *users* see
no obvious change after the rootkit insertion — only "a performance
change" from the extra virtualization layer.  This module makes that
quantifiable: :class:`WebService` serves requests inside the victim
guest, and :class:`LatencyProbe` measures client-observed RTTs, so the
before/after distributions can be compared (see
``benchmarks/test_ablation_user_latency.py``).
"""

from repro.errors import GuestError
from repro.sim.process import ChannelClosed
from repro.workloads.base import Workload

DEFAULT_PORT = 80
RESPONSE_BYTES = 16 * 1024
#: Native CPU per request (app logic + templating).
REQUEST_CPU_SECONDS = 2.2e-4


class WebService:
    """An HTTP-ish server running inside a guest system.

    Tracks the guest it serves *dynamically*, so it keeps working after
    a live migration re-homes the guest (the listener itself is carried
    over by the VM adoption logic).
    """

    def __init__(self, guest_system, port=DEFAULT_PORT):
        self.guest = guest_system
        self.port = port
        self.requests_served = 0
        if guest_system.net_node is None:
            raise GuestError("guest has no network attachment")
        guest_system.net_node.listen(port, handler=self._on_connect)

    def _on_connect(self, connection):
        self.guest.engine.process(
            self._serve(connection.server), name=f"webservice:{self.port}"
        )

    def _serve(self, endpoint):
        try:
            while True:
                request = yield endpoint.recv()
                kernel = self.guest.kernel
                cost = kernel.syscall_cost("net_recvmsg")
                cost += kernel.charge_cpu(
                    REQUEST_CPU_SECONDS, mem_intensity=0.4
                )
                cost += kernel.syscall_cost("net_sendmsg")
                vm = self.guest.qemu_vm
                if vm is not None and vm.paused:
                    yield vm.wait_if_paused()
                yield self.guest.engine.timeout(cost)
                self.requests_served += 1
                endpoint.send(
                    None, size_bytes=RESPONSE_BYTES, kind="http-response"
                )
                del request
        except ChannelClosed:
            return


class LatencyProbe(Workload):
    """Measures request RTTs from a client node outside the cloud."""

    name = "latency-probe"
    cpu_bound = False

    def __init__(self, client_node, server_node, port):
        super().__init__()
        self.client_node = client_node
        self.server_node = server_node
        self.port = port

    def run(self, system, requests=100, think_time=0.02):
        """Issue ``requests`` over one persistent connection.

        Metrics: ``rtts_ms`` (per-request list), ``median_ms``.
        ``system`` only provides the clock (the probe runs outside any
        guest).
        """
        result = self._begin(system)
        engine = system.engine
        endpoint = self.client_node.connect(self.server_node, self.port)
        rtts = []
        for _ in range(requests):
            if self._stop_requested:
                break
            started = engine.now
            endpoint.send(b"GET / HTTP/1.1", kind="http-request")
            yield endpoint.recv()
            rtts.append((engine.now - started) * 1e3)
            yield engine.timeout(think_time)
        endpoint.close()
        rtts_sorted = sorted(rtts)
        result.metrics["rtts_ms"] = rtts
        result.metrics["median_ms"] = (
            rtts_sorted[len(rtts_sorted) // 2] if rtts_sorted else 0.0
        )
        return self._finish(system, result)
