"""Filebench (fileserver personality): the I/O-intensive workload.

Each iteration performs the fileserver op mix — create/append a file,
read another, stat, delete — through the guest kernel's syscall layer
and the virtio block device.  Used as Fig 4's I/O-intensive migration
backdrop and available as a standalone throughput benchmark.
"""

from repro.workloads.base import Workload

#: Pages written per created/appended file (fileserver's ~64 KiB mean).
PAGES_PER_FILE = 16
#: Pages *newly dirtied* per op from the migration log's point of view —
#: the fileserver mix mostly rewrites a bounded working set, so only a
#: couple of pages per op are fresh dirty territory each sync interval.
FRESH_DIRTY_PAGES_PER_OP = 1
#: Fraction of operations that force a journal commit.
FSYNC_RATE = 0.06


class FilebenchWorkload(Workload):
    """The fileserver op mix."""

    name = "filebench"

    def run(self, system, duration=30.0, ops=None):
        """Run for ``duration`` seconds (or a fixed op count).

        Metrics: ``ops_per_second``, ``ops``.
        """
        self._r_system = system
        self._r_result = self._begin(system)
        self._r_kernel = system.kernel
        self._r_rng = system.rng.stream(f"filebench:{system.name}")
        self._r_device = None
        if system.qemu_vm is not None and system.qemu_vm.block_devices:
            self._r_device = system.qemu_vm.block_devices[0]

        self._r_ops = ops
        self._r_deadline = (
            None if ops is not None else system.engine.now + duration
        )
        self._r_completed = 0
        return (yield from self._body(system))

    def _body(self, system, resuming=False):
        kernel = self._r_kernel
        rng = self._r_rng
        device = self._r_device
        if resuming:
            yield from self._resume_pace(system)
            self._r_completed += 1
        while not self._stop_requested:
            if self._r_ops is not None and self._r_completed >= self._r_ops:
                break
            if (
                self._r_deadline is not None
                and system.engine.now >= self._r_deadline
            ):
                break
            cost = kernel.syscall_cost("creat_meta")
            cost += kernel.charge_syscalls("page_cache_write", PAGES_PER_FILE)
            cost += kernel.syscall_cost("block_io_submit")
            if device is not None:
                cost += device.write(PAGES_PER_FILE)
            system.memory.dirty_bulk(FRESH_DIRTY_PAGES_PER_OP)
            # Read a previously written file.
            cost += kernel.charge_syscalls("page_cache_read", PAGES_PER_FILE)
            cost += kernel.syscall_cost("block_io_submit")
            if device is not None:
                cost += device.read(PAGES_PER_FILE)
            cost += kernel.syscall_cost("stat")
            cost += kernel.syscall_cost("unlink_meta")
            if rng.random() < FSYNC_RATE:
                cost += kernel.syscall_cost("fsync_journal")
                if device is not None:
                    cost += device.flush()
            yield from self._pace(system, cost)
            self._r_completed += 1
        result = self._r_result
        elapsed = system.engine.now - result.started_at
        completed = self._r_completed
        result.metrics["ops"] = completed
        result.metrics["ops_per_second"] = completed / elapsed if elapsed else 0.0
        return self._finish(system, result)
