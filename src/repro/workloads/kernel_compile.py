"""The kernel-compile workload (paper Fig 2, and Fig 4's CPU/mem case).

Models decompressing and building Linux 4.0.5 with a fixed .config:
one decompression phase, then a stream of compile units, each of which
forks a compiler, burns TLB-heavy CPU time, and writes object/temp
pages.  ccache is modelled explicitly because the paper's own Fig 2
carries a 280% L0->L1 gap caused by ccache being enabled on L0 only
(their footnote 1); reproducing the figure means reproducing the
confound.
"""

from repro.workloads.base import Workload

#: Number of compilation units in the modeled build.
DEFAULT_UNITS = 2800
#: Native CPU seconds per unit on the testbed CPU (cold cache).
UNIT_CPU_SECONDS = 0.16
#: ccache hit ratio and the residual cost of a hit, tuned to the
#: paper's observed ~3.8x speedup on L0.
CCACHE_HIT_RATIO = 0.78
CCACHE_HIT_COST_FRACTION = 0.06
#: Object/temp pages written per unit — the migration dirty-rate driver.
PAGES_DIRTIED_PER_UNIT = 4000
#: Decompression phase: CPU seconds and pages written.
DECOMPRESS_CPU_SECONDS = 8.0
DECOMPRESS_PAGES = 30000


class KernelCompileWorkload(Workload):
    """make -jN of a fixed tree, with optional ccache."""

    name = "kernel-compile"

    def __init__(
        self,
        units=DEFAULT_UNITS,
        ccache_enabled=False,
        unit_cpu_seconds=UNIT_CPU_SECONDS,
        pages_per_unit=PAGES_DIRTIED_PER_UNIT,
    ):
        super().__init__()
        self.units = units
        self.ccache_enabled = ccache_enabled
        self.unit_cpu_seconds = unit_cpu_seconds
        self.pages_per_unit = pages_per_unit

    def run(self, system, units=None, loop_forever=False):
        """Build the tree once (or repeatedly, for migration backdrops).

        Metrics: ``build_seconds`` (first build's wall time), ``units``.
        """
        self._r_system = system
        self._r_result = self._begin(system)
        self._r_kernel = system.kernel
        self._r_total = self.units if units is None else units
        self._r_loop_forever = loop_forever
        self._r_rng = system.rng.stream(f"compile:{system.name}")
        self._r_phase = "decompress"

        # Decompress the source tarball.
        cost = self._r_kernel.charge_cpu(DECOMPRESS_CPU_SECONDS, mem_intensity=0.8)
        system.memory.dirty_bulk(DECOMPRESS_PAGES)
        yield from self._pace(system, cost)
        return (yield from self._body(system))

    def _body(self, system, resuming=False):
        if resuming:
            yield from self._resume_pace(system)
            if self._r_phase == "loop" and self._loop_tail(system):
                return self._finish_build(system)
        if self._r_phase == "decompress":
            self._r_first_build = None
            self._r_build_start = system.engine.now
            self._r_completed = 0
            self._r_phase = "loop"
        kernel = self._r_kernel
        rng = self._r_rng
        while not self._stop_requested:
            cpu = self.unit_cpu_seconds
            if self.ccache_enabled and rng.random() < CCACHE_HIT_RATIO:
                cpu *= CCACHE_HIT_COST_FRACTION
            cost = kernel.syscall_cost("fork_execve")
            cost += kernel.charge_cpu(cpu, mem_intensity=1.0)
            cost += kernel.syscall_cost("page_cache_write")
            system.memory.dirty_bulk(self.pages_per_unit)
            yield from self._pace(system, cost)
            if self._loop_tail(system):
                break
        return self._finish_build(system)

    def _loop_tail(self, system):
        """Post-unit bookkeeping; True once the (non-looping) build ends."""
        self._r_completed += 1
        if self._r_completed % self._r_total == 0:
            if self._r_first_build is None:
                self._r_first_build = system.engine.now - self._r_build_start
            if not self._r_loop_forever:
                return True
        return False

    def _finish_build(self, system):
        if self._r_first_build is None:
            self._r_first_build = system.engine.now - self._r_build_start
        result = self._r_result
        result.metrics["build_seconds"] = self._r_first_build
        result.metrics["units"] = self._r_completed
        return self._finish(system, result)
