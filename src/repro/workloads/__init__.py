"""Workload generators for the paper's evaluation.

* :mod:`~repro.workloads.idle` — an inactive cloud user (Fig 4);
* :mod:`~repro.workloads.kernel_compile` — CPU/memory-intensive
  (Fig 2, Fig 4);
* :mod:`~repro.workloads.netperf` — TCP bulk-stream network benchmark
  (Fig 3);
* :mod:`~repro.workloads.filebench` — I/O-intensive fileserver (Fig 4);
* :mod:`~repro.workloads.lmbench` — the microbenchmark suites of
  Tables II-IV.

All workloads issue abstract operations through the guest kernel's
charging API, so their costs — and their dirty-page footprints during
migration — emerge from the single exit model in
:mod:`repro.hypervisor.exits`.
"""

from repro.workloads.base import Workload, WorkloadResult
from repro.workloads.filebench import FilebenchWorkload
from repro.workloads.idle import IdleWorkload
from repro.workloads.kernel_compile import KernelCompileWorkload
from repro.workloads.netperf import NetperfServer, NetperfWorkload

__all__ = [
    "FilebenchWorkload",
    "IdleWorkload",
    "KernelCompileWorkload",
    "NetperfServer",
    "NetperfWorkload",
    "Workload",
    "WorkloadResult",
]
