"""Ablation: pre-copy vs post-copy migration (§II-A).

The paper: "today's mainstream hypervisors support two types of live
migration ... The rootkit technique we present applies to both."  This
bench quantifies the trade-off that makes post-copy attractive to an
attacker facing a busy victim: its end-to-end time is workload-
independent, where pre-copy's explodes under a CPU/memory workload.
"""

import pytest

from repro import scenarios
from repro.analysis.report import render_table
from repro.migration.postcopy import PostCopyDestination, PostCopyMigration
from repro.qemu.config import DriveSpec
from repro.qemu.qemu_img import qemu_img_create
from repro.qemu.vm import launch_vm
from repro.workloads.idle import IdleWorkload
from repro.workloads.kernel_compile import KernelCompileWorkload


def _precopy(workload_name, seed):
    host = scenarios.testbed(seed=seed)
    vm = scenarios.launch_victim(host)
    workload = _start_workload(workload_name, vm)
    qemu_img_create(host, "/var/lib/images/dest.qcow2", 20)
    config = vm.config.clone_for_destination(
        "dest0", incoming_port=4444, keep_hostfwds=False
    )
    config.drives = [DriveSpec("/var/lib/images/dest.qcow2")]
    launch_vm(host, config)
    vm.monitor.execute("migrate -d tcp:127.0.0.1:4444")
    host.engine.run(vm.migration_process)
    workload.stop()
    stats = vm.migration_stats
    return stats.total_time, stats.downtime


def _postcopy(workload_name, seed):
    host = scenarios.testbed(seed=seed)
    vm = scenarios.launch_victim(host)
    workload = _start_workload(workload_name, vm)
    qemu_img_create(host, "/var/lib/images/pcdest.qcow2", 20)
    config = vm.config.clone_for_destination(
        "pcdest", incoming_port=None, keep_hostfwds=False
    )
    config.drives = [DriveSpec("/var/lib/images/pcdest.qcow2")]
    dest, _ = launch_vm(host, config)
    dest.guest = None
    dest.status = "inmigrate"
    dest.pause()
    PostCopyDestination(dest, 4600).start()
    migration = PostCopyMigration(vm, destination_port=4600)
    host.engine.run(migration.start())
    workload.stop()
    return migration.stats.total_time, migration.stats.downtime


def _start_workload(name, vm):
    if name == "compile":
        workload = KernelCompileWorkload()
        workload.start(vm.guest, loop_forever=True)
    else:
        workload = IdleWorkload()
        workload.start(vm.guest)
    return workload


@pytest.mark.figure("ablation-postcopy")
def test_ablation_precopy_vs_postcopy(benchmark):
    def run_all():
        out = {}
        for mode, fn in (("pre-copy", _precopy), ("post-copy", _postcopy)):
            for workload in ("idle", "compile"):
                out[(mode, workload)] = fn(workload, 101)
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for (mode, workload), (total, downtime) in sorted(results.items()):
        rows.append([f"{mode}/{workload}", total, downtime * 1000])
    print()
    print(
        render_table(
            "Ablation: migration mode trade-off",
            ["scenario", "total (s)", "downtime (ms)"],
            rows,
            col_width=18,
        )
    )

    pre_idle, _ = results[("pre-copy", "idle")]
    pre_compile, _ = results[("pre-copy", "compile")]
    post_idle, post_idle_down = results[("post-copy", "idle")]
    post_compile, post_compile_down = results[("post-copy", "compile")]
    # Pre-copy explodes under compile; post-copy does not.
    assert pre_compile > 5 * pre_idle
    assert post_compile < 2 * post_idle
    # Post-copy's downtime is tiny and workload-independent.
    assert post_idle_down < 0.05
    assert post_compile_down < 0.05
