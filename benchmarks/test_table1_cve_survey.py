"""Table I: VM-escape CVEs per hypervisor, 2015-2020."""

import pytest

from repro.analysis.report import render_table
from repro.data.cve import HYPERVISORS, YEARS, table1_matrix

PAPER_TOTALS = {
    "VMware": 29,
    "VirtualBox": 15,
    "Xen": 15,
    "Hyper-V": 14,
    "KVM/QEMU": 23,
}


@pytest.mark.figure("table1")
def test_table1_cve_survey(benchmark):
    matrix, totals = benchmark(table1_matrix)

    rows = [
        [year] + [matrix[year][hv] for hv in HYPERVISORS] for year in YEARS
    ]
    rows.append(["Total"] + [totals[hv] for hv in HYPERVISORS])
    print()
    print(render_table("TABLE I: VM Escape CVEs 2015-2020", ["Year"] + list(HYPERVISORS), rows))
    print(f"paper totals: {PAPER_TOTALS}")

    assert totals == PAPER_TOTALS
    # The paper's narrative claims: majority reported 2015-2020 with
    # KVM/QEMU and VMware leading.
    assert totals["VMware"] == max(totals.values())
    assert sum(totals.values()) > 90
