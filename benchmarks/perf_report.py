#!/usr/bin/env python
"""Hot-path performance report: time three canonical scenarios.

Runs the scenarios the perf work is judged on —

* ``detection_under_io``     — the dedup detection protocol (clean and
  nested) with a Filebench workload hammering the guest (Figs 5/6
  under load);
* ``fig4_migration_filebench`` — the Fig 4 pre-copy live migration of a
  Filebench-loaded victim;
* ``lmbench_l2_proc``        — Table 3 process-latency microbenchmarks
  in an L2 (nested) guest;
* ``fleet_sweep_4x12``       — a `repro.cloud` control-plane run: 12
  churning tenants on 4 hosts, one cross-host migration, one injected
  CloudSkulk campaign, one fleet-wide detection sweep;
* ``chaos_recall_4x12``      — the same fleet under the ``mixed``
  fault-injection mix (`repro.faults`): detection recall/latency with
  host crashes, partitions, and migration drops in play;
* ``migration_dedup_4x12``   — deduplicated pre-copy of a KSM-heavy
  tenant (capability ``dedup``): same page population, fewer wire
  bytes —

and writes wall-clock timings, virtual-time fingerprints, and the
engine's perf counters to ``BENCH_core.json`` so later PRs have a
trajectory to beat.  Every run (including ``--quick``) also measures
``tracer_overhead_fleet``: fleet_sweep_4x12 traced vs untraced, held
to :data:`TRACER_OVERHEAD_BUDGET_PCT`, and ``chaos_fanout_4x12``:
one warmed 4x12 fleet forked into 12 fault branches (copy-on-write
snapshots, `repro.sim.snapshot`) against the same 12 branches run
cold — the fan-out must beat cold by
:data:`CHAOS_FANOUT_SPEEDUP_TARGET` and every forked branch must
fingerprint byte-identically to its cold twin — and
``matrix_expand_200``: the shipped detection-recall grid must expand to
its full >=200 variants with stable IDs, and the matrix runner's
warm-fork grouping must beat the cold comparator by
:data:`MATRIX_EXPAND_SPEEDUP_TARGET` on one warm group with identical
fingerprints and perf deltas.  Full (non-quick) runs add
``sharded_sweep_16x``: one warmed 16x192 fleet branched serial and
4-way sharded (`repro.cloud.sharding`) — fingerprints must be
byte-identical and the deterministic critical-path speedup (serial
branch events over the busiest shard's) must meet
:data:`SHARDED_SWEEP_SPEEDUP_TARGET`.

Each scenario's *fingerprint* captures the virtual-time results
(verdicts, medians, MigrationStats totals, latencies).  Optimizations
must leave fingerprints byte-identical to :data:`BASELINE` — a wall
clock win that changes simulated results is a correctness bug, not a
speedup.

Usage::

    PYTHONPATH=src python benchmarks/perf_report.py            # all scenarios
    PYTHONPATH=src python benchmarks/perf_report.py --quick    # detection only
    PYTHONPATH=src python benchmarks/perf_report.py --parallel # process pool
    PYTHONPATH=src python benchmarks/perf_report.py -o out.json

``--parallel`` fans the scenarios out over a ``multiprocessing`` pool
(one process each) and merges the results deterministically in
``SCENARIOS`` order — fingerprints are the point of that mode; the
wall clocks of concurrent runs contend for cores, so the sequential
run stays the timing of record.
"""

import argparse
import json
import os
import sys
import time

#: Pre-change reference, recorded on the commit preceding the hot-path
#: overhaul (same machine, same scenario code, best of two runs).  The
#: fingerprints are the ground truth the optimized engine must still
#: produce bit-for-bit.
BASELINE = {
    "detection_under_io": {
        "wall_seconds": 7.393,
        "fingerprint": {
            "clean": {
                "verdict": "clean",
                "median_t0": 0.25121138130938825,
                "median_t1": 379.21856694542475,
                "median_t2": 0.2502517481053238,
                "virtual_now": 89.26796287360868,
            },
            "nested": {
                "verdict": "nested",
                "median_t0": 0.25121138130938825,
                "median_t1": 379.21856694542475,
                "median_t2": 380.63290886819743,
                "virtual_now": 131.31306111988857,
            },
        },
    },
    "fig4_migration_filebench": {
        "wall_seconds": 1.739,
        "fingerprint": {
            "status": "completed",
            "ram_bytes": 958629800,
            "pages_transferred": 233396,
            "zero_pages": 96115,
            "iterations": 5,
            "downtime": 0.00208560000001512,
            "migration_virtual_seconds": 29.599723616053378,
        },
    },
    "fleet_sweep_4x12": {
        "wall_seconds": 1.417,
        "fingerprint": {
            "virtual_now": 538.6211645267207,
            "placements": 15,
            "migrations": 1,
            "tenants_probed": 13,
            "compromised": ["t000@h02"],
            "recall": 1.0,
        },
    },
    "chaos_recall_4x12": {
        "wall_seconds": 0.833,
        "fingerprint": {
            "campaigns": 1,
            "detected": 1,
            "faults_injected": 5,
            "faults_recovered": 3,
            "mean_detection_latency": 150.05649039826312,
            "recall": 1.0,
            "tenants_degraded": ["t000", "t001", "t002", "t003"],
            "tenants_running": 6,
            "unreachable_findings": 5,
            "virtual_now": 518.334579941223,
        },
    },
    "migration_dedup_4x12": {
        # New scenario introduced with the page-store PR: the baseline
        # wall is its first measurement, the fingerprint pins the wire
        # accounting of the dedup capability from day one.
        "wall_seconds": 0.187,
        "fingerprint": {
            "plain": {
                "status": "completed",
                "ram_bytes": 690018912,
                "pages_transferred": 167949,
                "pages_deduped": 0,
                "zero_pages": 94195,
                "iterations": 2,
                "migration_virtual_seconds": 21.312219083031838,
            },
            "dedup": {
                "status": "completed",
                "ram_bytes": 682389312,
                "pages_transferred": 167949,
                "pages_deduped": 1870,
                "zero_pages": 94195,
                "iterations": 2,
                "migration_virtual_seconds": 21.08293188414267,
            },
            "wire_savings_pct": 1.11,
        },
    },
    "chaos_fanout_4x12": {
        # New scenario introduced with the snapshot/fork PR: the
        # baseline wall is the fan-out's first clean measurement under
        # heap_frozen (cold ran 38.4s on the same box, 2.27x slower);
        # the fingerprint pins all 12 branch outcomes from day one.
        "wall_seconds": 16.910,
        "fingerprint": {
            "guest_hang": {
                "campaigns": 1,
                "detected": 1,
                "faults_injected": 3,
                "faults_recovered": 2,
                "kind": "guest_hang",
                "mean_detection_latency": 630.2398904861316,
                "recall": 1.0,
                "virtual_now": 2099.8746349926646,
            },
            "host_crash": {
                "campaigns": 1,
                "detected": 1,
                "faults_injected": 3,
                "faults_recovered": 3,
                "kind": "host_crash",
                "mean_detection_latency": 630.2398904861316,
                "recall": 1.0,
                "virtual_now": 2099.8746349926646,
            },
            "ksm_stall": {
                "campaigns": 1,
                "detected": 1,
                "faults_injected": 3,
                "faults_recovered": 3,
                "kind": "ksm_stall",
                "mean_detection_latency": 630.2398904861316,
                "recall": 1.0,
                "virtual_now": 2099.8746349926646,
            },
            "latency_spike": {
                "campaigns": 1,
                "detected": 1,
                "faults_injected": 1,
                "faults_recovered": 1,
                "kind": "latency_spike",
                "mean_detection_latency": 630.2398904861316,
                "recall": 1.0,
                "virtual_now": 2099.8746349926646,
            },
            "migration_drop": {
                "campaigns": 1,
                "detected": 1,
                "faults_injected": 3,
                "faults_recovered": 0,
                "kind": "migration_drop",
                "mean_detection_latency": 630.2398904861316,
                "recall": 1.0,
                "virtual_now": 2099.8746349926646,
            },
            "mixed#1": {
                "campaigns": 1,
                "detected": 1,
                "faults_injected": 3,
                "faults_recovered": 3,
                "kind": "mixed#1",
                "mean_detection_latency": 630.2398904861316,
                "recall": 1.0,
                "virtual_now": 2099.8746349926646,
            },
            "mixed#2": {
                "campaigns": 1,
                "detected": 1,
                "faults_injected": 3,
                "faults_recovered": 3,
                "kind": "mixed#2",
                "mean_detection_latency": 630.2398904861316,
                "recall": 1.0,
                "virtual_now": 2099.8746349926646,
            },
            "mixed#3": {
                "campaigns": 1,
                "detected": 1,
                "faults_injected": 3,
                "faults_recovered": 3,
                "kind": "mixed#3",
                "mean_detection_latency": 630.2398904861316,
                "recall": 1.0,
                "virtual_now": 2099.8746349926646,
            },
            "mixed#4": {
                "campaigns": 1,
                "detected": 1,
                "faults_injected": 3,
                "faults_recovered": 1,
                "kind": "mixed#4",
                "mean_detection_latency": 630.2398904861316,
                "recall": 1.0,
                "virtual_now": 2099.8746349926646,
            },
            "none": {
                "campaigns": 1,
                "detected": 1,
                "faults_injected": 0,
                "faults_recovered": 0,
                "kind": "none",
                "mean_detection_latency": 630.2398904861316,
                "recall": 1.0,
                "virtual_now": 2099.8746349926646,
            },
            "partition": {
                "campaigns": 1,
                "detected": 1,
                "faults_injected": 3,
                "faults_recovered": 3,
                "kind": "partition",
                "mean_detection_latency": 630.2398904861316,
                "recall": 1.0,
                "virtual_now": 2099.8746349926646,
            },
            "probe_timeout": {
                "campaigns": 1,
                "detected": 1,
                "faults_injected": 3,
                "faults_recovered": 0,
                "kind": "probe_timeout",
                "mean_detection_latency": 570.2082787585591,
                "recall": 1.0,
                "virtual_now": 2039.8430232650921,
            },
        },
    },
    "matrix_expand_200": {
        # New entry introduced with the scenario-matrix PR: the wall is
        # the warm-fork run of MATRIX_SPEEDUP_CELL (7 forked branches,
        # one warm fleet; cold ran 9.1s on the same box, 2.36x slower);
        # the fingerprint pins all seven attacker-seed outcomes.
        "wall_seconds": 3.85,
        "fingerprint": {
            "ksm=settled,probe=shallow,seed=s0,workload=bursty": {
                "campaigns": 1,
                "detected": 1,
                "detection_latencies": [
                    144.06447434011739
                ],
                "faults_injected": 0,
                "faults_recovered": 0,
                "mean_detection_latency": 144.06447434011739,
                "recall": 1.0,
                "sweeps": [
                    {
                        "compromised": [
                            "t000@h00"
                        ],
                        "tenants_probed": 13
                    }
                ],
                "tenants_degraded": [],
                "tenants_running": 7,
                "unreachable_findings": 0,
                "virtual_now": 749.4367386160072
            },
            "ksm=settled,probe=shallow,seed=s1,workload=bursty": {
                "campaigns": 1,
                "detected": 1,
                "detection_latencies": [
                    144.06447434011739
                ],
                "faults_injected": 0,
                "faults_recovered": 0,
                "mean_detection_latency": 144.06447434011739,
                "recall": 1.0,
                "sweeps": [
                    {
                        "compromised": [
                            "t000@h00"
                        ],
                        "tenants_probed": 13
                    }
                ],
                "tenants_degraded": [],
                "tenants_running": 7,
                "unreachable_findings": 0,
                "virtual_now": 749.4367386160072
            },
            "ksm=settled,probe=shallow,seed=s2,workload=bursty": {
                "campaigns": 1,
                "detected": 1,
                "detection_latencies": [
                    144.06447434011739
                ],
                "faults_injected": 0,
                "faults_recovered": 0,
                "mean_detection_latency": 144.06447434011739,
                "recall": 1.0,
                "sweeps": [
                    {
                        "compromised": [
                            "t000@h00"
                        ],
                        "tenants_probed": 13
                    }
                ],
                "tenants_degraded": [],
                "tenants_running": 7,
                "unreachable_findings": 0,
                "virtual_now": 749.4367386160072
            },
            "ksm=settled,probe=shallow,seed=s3,workload=bursty": {
                "campaigns": 1,
                "detected": 1,
                "detection_latencies": [
                    144.06447434011739
                ],
                "faults_injected": 0,
                "faults_recovered": 0,
                "mean_detection_latency": 144.06447434011739,
                "recall": 1.0,
                "sweeps": [
                    {
                        "compromised": [
                            "t000@h00"
                        ],
                        "tenants_probed": 13
                    }
                ],
                "tenants_degraded": [],
                "tenants_running": 7,
                "unreachable_findings": 0,
                "virtual_now": 749.4367386160072
            },
            "ksm=settled,probe=shallow,seed=s4,workload=bursty": {
                "campaigns": 1,
                "detected": 1,
                "detection_latencies": [
                    144.06447434011739
                ],
                "faults_injected": 0,
                "faults_recovered": 0,
                "mean_detection_latency": 144.06447434011739,
                "recall": 1.0,
                "sweeps": [
                    {
                        "compromised": [
                            "t000@h00"
                        ],
                        "tenants_probed": 13
                    }
                ],
                "tenants_degraded": [],
                "tenants_running": 7,
                "unreachable_findings": 0,
                "virtual_now": 749.4367386160072
            },
            "ksm=settled,probe=shallow,seed=s5,workload=bursty": {
                "campaigns": 1,
                "detected": 1,
                "detection_latencies": [
                    144.06447434011739
                ],
                "faults_injected": 0,
                "faults_recovered": 0,
                "mean_detection_latency": 144.06447434011739,
                "recall": 1.0,
                "sweeps": [
                    {
                        "compromised": [
                            "t000@h00"
                        ],
                        "tenants_probed": 13
                    }
                ],
                "tenants_degraded": [],
                "tenants_running": 7,
                "unreachable_findings": 0,
                "virtual_now": 749.4367386160072
            },
            "ksm=settled,probe=shallow,seed=s6,workload=bursty": {
                "campaigns": 1,
                "detected": 1,
                "detection_latencies": [
                    144.06447434011739
                ],
                "faults_injected": 0,
                "faults_recovered": 0,
                "mean_detection_latency": 144.06447434011739,
                "recall": 1.0,
                "sweeps": [
                    {
                        "compromised": [
                            "t000@h00"
                        ],
                        "tenants_probed": 13
                    }
                ],
                "tenants_degraded": [],
                "tenants_running": 7,
                "unreachable_findings": 0,
                "virtual_now": 749.4367386160072
            }
        },
    },
    "sharded_sweep_16x": {
        # New entry introduced with the sharded-core PR: the baseline
        # wall is the 4-shard branch's first clean measurement (serial
        # ran 10.1s in the same process; this box has one CPU, so the
        # shards timeshare it — the scaling gate is the deterministic
        # critical-path ratio, see sharded_sweep_entry).  The
        # fingerprint pins the 16x192 outcome plus a digest of the full
        # run summary, which doubles as the cross-shard divergence bar.
        "wall_seconds": 11.409,
        "fingerprint": {
            "virtual_now": 4489.657104421361,
            "tenants_probed": 192,
            "compromised": ["t074@h09"],
            "recall": 1.0,
            "summary_sha256": (
                "5dff07660c95a0d49397586cdb606424"
                "014a269f7fa8bbc0da4db7ef2ce26cf9"
            ),
        },
    },
    "probe_score_4x12": {
        # New entry introduced with the probe-catalog PR: the baseline
        # wall is the whole-catalog sweep's first clean measurement
        # (single-detector ran 1.02s in the same process, ratio 1.08x
        # against the 1.5x budget); the fingerprint pins the catalog's
        # verdict census — the VMI probe's one `inconclusive` is the
        # nested tenant behind the semantic gap.
        "wall_seconds": 1.102,
        "fingerprint": {
            "virtual_now": 608.8246685267202,
            "tenants_probed": 13,
            "compromised": ["t000@h02"],
            "recall": 1.0,
            "verdicts": {
                "ksm_timing": {"clean": 12, "nested": 1},
                "vmi_invariance": {"clean": 12, "inconclusive": 1},
                "dedup_spy": {"clean": 13},
            },
        },
    },
    "lmbench_l2_proc": {
        "wall_seconds": 0.128,
        "fingerprint": {
            "latencies_us": {
                "AF_UNIX sock stream latency": 40.955226277960996,
                "fork+ /bin/sh -c": 2032.6331245589731,
                "fork+ execve": 596.0382541469006,
                "fork+ exit": 250.6445163207815,
                "pipe latency": 65.55697754452488,
                "protection fault": 0.3464310272261916,
                "signal handler installation": 0.11728802613223249,
                "signal handler overhead": 0.629748239360108,
            },
        },
    },
}


def scenario_detection_io():
    from repro import scenarios
    from repro.core.detection.dedup_detector import DedupDetector
    from repro.workloads.filebench import FilebenchWorkload

    fingerprint = {}
    perf = {}
    started = time.perf_counter()
    for nested in (False, True):
        host, cloud, _ksm, locator = scenarios.detection_setup(
            nested=nested, seed=42
        )
        workload = FilebenchWorkload()
        workload.start(locator(), duration=10_000.0)
        detector = DedupDetector(host, cloud, file_pages=30)
        report = host.engine.run(host.engine.process(detector.run()))
        workload.stop()
        verdict = report.verdict
        key = "nested" if nested else "clean"
        fingerprint[key] = {
            "verdict": verdict.verdict,
            "median_t0": verdict.median_t0,
            "median_t1": verdict.median_t1,
            "median_t2": verdict.median_t2,
            "virtual_now": host.engine.now,
        }
        perf[key] = host.engine.perf.as_dict()
    return time.perf_counter() - started, fingerprint, perf


def scenario_fig4_migration():
    from repro import scenarios
    from repro.qemu.config import DriveSpec
    from repro.qemu.qemu_img import qemu_img_create
    from repro.qemu.vm import launch_vm
    from repro.workloads.filebench import FilebenchWorkload

    started = time.perf_counter()
    host = scenarios.testbed(seed=42)
    vm = scenarios.launch_victim(host)
    workload = FilebenchWorkload()
    workload.start(vm.guest)
    qemu_img_create(host, "/var/lib/images/dest.qcow2", 20)
    config = vm.config.clone_for_destination(
        "dest0", incoming_port=4444, keep_hostfwds=False
    )
    config.drives = [DriveSpec("/var/lib/images/dest.qcow2")]
    launch_vm(host, config)
    migration_started = host.engine.now
    vm.monitor.execute("migrate -d tcp:127.0.0.1:4444")
    host.engine.run(vm.migration_process)
    workload.stop()
    stats = vm.migration_stats
    fingerprint = {
        "status": stats.status,
        "ram_bytes": stats.ram_bytes,
        "pages_transferred": stats.pages_transferred,
        "zero_pages": stats.zero_pages,
        "iterations": stats.iterations,
        "downtime": stats.downtime,
        "migration_virtual_seconds": host.engine.now - migration_started,
    }
    return time.perf_counter() - started, fingerprint, host.engine.perf.as_dict()


#: Fleet-sweep parameters shared by the timing scenario and the
#: tracer-overhead check, so the two measure the same workload.
FLEET_SWEEP_PARAMS = dict(
    hosts=4,
    tenants=12,
    seed=42,
    churn_operations=6,
    rebalance_moves=1,
    campaigns=1,
    sweeps=1,
    file_pages=12,
    wait_seconds=10.0,
)

#: Ceiling on the wall-clock cost of tracing fleet_sweep_4x12, as a
#: percentage over the untraced run in the same process.  Measured
#: overhead is ~0-3% (decimated hot paths); the budget leaves headroom
#: for CI timing noise while still catching an accidental per-event
#: hot-path regression (undecimated step tracing costs >100%).
TRACER_OVERHEAD_BUDGET_PCT = 25.0


def _run_clean_room(child_code, *child_args):
    """Run a timing child in a fresh interpreter; parse its JSON reply.

    Ratio gates (tracer overhead, warm-fork speedup) compare two wall
    clocks measured back to back.  In the report's own long-lived
    process both legs inflate with whatever earlier scenarios left
    behind — allocator arenas and caches that ``heap_frozen`` can't
    shield — and on a small box the swing (±35 % observed on the
    matrix legs) is larger than the margins the gates enforce, in
    either direction.  A fresh interpreter per entry makes the thing
    the gate measures the only variable, the same reasoning
    ``bench-par`` applies to whole scenarios.  Children time inside
    themselves (best-of-two, mirroring :func:`_measure`), so
    interpreter startup is excluded and transient load is damped.

    The child gets ``src`` and ``benchmarks`` on ``sys.path`` via its
    first two argv entries and must print its JSON reply as the last
    stdout line.
    """
    import subprocess

    import repro

    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    bench_dir = os.path.dirname(os.path.abspath(__file__))
    proc = subprocess.run(
        [sys.executable, "-c", child_code, src_dir, bench_dir]
        + [str(arg) for arg in child_args],
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"clean-room timing child failed:\n{proc.stderr}"
        )
    return json.loads(proc.stdout.strip().splitlines()[-1])


#: Clean-room child for the tracer-overhead entry: fleet_sweep_4x12
#: untraced then traced, each best-of-two, in a fresh interpreter.
_TRACER_CHILD = """\
import json, sys

src_dir, bench_dir = sys.argv[1:3]
sys.path.insert(0, bench_dir)
sys.path.insert(0, src_dir)

from perf_report import _run_fleet_sweep


# Interleaved best-of-two: at sub-second leg walls the allocator
# warming between the first and last run is itself a few percent, so
# neither leg may own "last".
walls = {False: [], True: []}
fps = {False: None, True: None}
traced = None
for trace in (False, True, False, True):
    wall, fp, result = _run_fleet_sweep(trace=trace)
    if fps[trace] is not None and fp != fps[trace]:
        raise AssertionError("fleet sweep fingerprints differ between runs")
    walls[trace].append(wall)
    fps[trace] = fp
    if trace:
        traced = result

untraced_wall, untraced_fp = min(walls[False]), fps[False]
traced_wall, traced_fp = min(walls[True]), fps[True]
print()
print(json.dumps({
    "untraced_wall": untraced_wall,
    "traced_wall": traced_wall,
    "untraced_fp": untraced_fp,
    "traced_fp": traced_fp,
    "trace_events": len(traced.tracer.events()),
    "dropped_events": traced.tracer.dropped_events,
    "metrics": traced.tracer.metrics.as_dict(),
}))
"""


def _run_fleet_sweep(trace=False):
    """One fleet_sweep_4x12 run; returns (wall, fingerprint, result)."""
    from repro.cloud import run_fleet

    started = time.perf_counter()
    result = run_fleet(trace=trace, **FLEET_SWEEP_PARAMS)
    wall = time.perf_counter() - started
    engine = result.datacenter.engine
    sweep = result.monitor.reports[0]
    fingerprint = {
        "virtual_now": engine.now,
        "placements": engine.perf.cloud_placements,
        "migrations": engine.perf.cloud_migrations,
        "tenants_probed": sweep.tenants_probed,
        "compromised": [f"{t}@{h}" for t, h in sweep.compromised],
        "recall": result.recall,
    }
    return wall, fingerprint, result


def scenario_fleet_sweep():
    wall, fingerprint, result = _run_fleet_sweep()
    return wall, fingerprint, result.datacenter.engine.perf.as_dict()


def tracer_overhead_entry():
    """Benchmark tracing overhead on fleet_sweep_4x12.

    Runs the scenario untraced then traced (best-of-two each, in a
    fresh interpreter — see :func:`_run_clean_room`) and holds the
    slowdown to :data:`TRACER_OVERHEAD_BUDGET_PCT`.  Also asserts the
    traced run's virtual-time fingerprint is identical —
    observability must never perturb the simulation.
    """
    data = _run_clean_room(_TRACER_CHILD)
    overhead_pct = 100.0 * (data["traced_wall"] / data["untraced_wall"] - 1.0)
    return {
        "untraced_wall_seconds": round(data["untraced_wall"], 3),
        "traced_wall_seconds": round(data["traced_wall"], 3),
        "overhead_pct": round(overhead_pct, 1),
        "overhead_budget_pct": TRACER_OVERHEAD_BUDGET_PCT,
        "within_budget": overhead_pct <= TRACER_OVERHEAD_BUDGET_PCT,
        "trace_events": data["trace_events"],
        "dropped_events": data["dropped_events"],
        "fingerprint_matches_baseline": data["traced_fp"] == data["untraced_fp"],
        # The traced run's full metric registry — deterministic, so the
        # dump doubles as a regression fingerprint for the tracepoints.
        "metrics": data["metrics"],
    }


#: The warmed-fleet shape the fan-out benchmark amortizes: a heavier
#: churn tail plus a KSM settle window make the warm prefix dominate,
#: which is exactly the workload shape snapshot/fork exists for (the
#: paper's Figs 5/6 loop: one warmed guest, many timed probe branches).
CHAOS_FANOUT_WARM_PARAMS = dict(
    hosts=4,
    tenants=12,
    seed=42,
    churn_operations=96,
    rebalance_moves=1,
    settle_seconds=120.0,
)

#: The divergent suffix every branch runs after the fork.
CHAOS_FANOUT_BRANCH_PARAMS = dict(
    campaigns=1,
    sweeps=1,
    file_pages=12,
    wait_seconds=10.0,
)

#: Required wall-clock advantage of warm-once-fork-12 over the same 12
#: branches run cold (each paying its own warm-up).
CHAOS_FANOUT_SPEEDUP_TARGET = 2.0


def _chaos_fanout_plans():
    """The 12 branch plans: one fault-free, one per fault kind, and
    four seed variants of the ``mixed`` standard plan.

    The seed variants are what amortizes the one-shot warm-up/capture
    cost into a robust end-to-end win: at 8 branches the speedup sits
    near the 2x gate, at 12 it clears it with margin — and a per-seed
    sweep of the same mix is exactly how `fan_out_seeds` is used.
    """
    from repro.faults.chaos import standard_mix_plan
    from repro.faults.plan import FAULT_KINDS, FaultPlan
    from repro.sim.rng import RngRegistry

    plans = [("none", None)]
    for kind in FAULT_KINDS:
        rng = RngRegistry(42).stream(f"faults.kind.{kind}")
        plans.append(
            (kind, FaultPlan.random(rng, faults=3, horizon=180.0, kinds=(kind,)))
        )
    for index in range(1, 5):
        plans.append(
            (
                f"mixed#{index}",
                standard_mix_plan(
                    "mixed",
                    42,
                    faults=3,
                    horizon=180.0,
                    stream=f"faults.mix.mixed#{index}",
                ),
            )
        )
    return plans


def _chaos_branch_fingerprint(kind, result):
    perf = result.datacenter.engine.perf
    latencies = result.detection_latencies
    return {
        "kind": kind,
        "campaigns": len(result.campaign.events),
        "detected": result.detected_campaigns,
        "recall": result.recall,
        "mean_detection_latency": (
            sum(latencies) / len(latencies) if latencies else None
        ),
        "faults_injected": perf.faults_injected,
        "faults_recovered": perf.faults_recovered,
        "virtual_now": result.datacenter.engine.now,
    }


def chaos_fanout_entry():
    """Benchmark warm-once-fork-12 against the same 12 branches cold.

    Warms one 4x12 fleet, snapshots it, forks the 12 branch plans off
    the snapshot (serial fan-out), then runs all 12 cold — each cold
    branch paying the full warm-up itself on a live, uncaptured fleet.
    Two gates: every forked branch must fingerprint byte-identically to
    its cold twin (forks don't perturb virtual time), and the fan-out
    wall must beat cold by :data:`CHAOS_FANOUT_SPEEDUP_TARGET`.  The
    internal forked-vs-cold diff doubles as the determinism check, so
    this entry runs single-pass instead of best-of-two.

    The whole measurement (warm-up, fan-out, *and* the cold comparator
    legs) runs under :func:`heap_frozen`: by the time this entry runs,
    the earlier scenarios have left a large live heap behind, and
    letting the collector's full passes re-scan it inflates both sides
    of the comparison by up to 2x — this entry would then be timing the
    other scenarios' leftovers, not the fork payoff.
    """
    import gc

    from repro.cloud import warm_fleet
    from repro.sim.snapshot import heap_frozen

    plans = _chaos_fanout_plans()
    with heap_frozen():
        started = time.perf_counter()
        fleet = warm_fleet(**CHAOS_FANOUT_WARM_PARAMS)
        warm_wall = time.perf_counter() - started
        pages_shared = fleet.snapshot.pages_shared
        with fleet:
            results = fleet.fan_out(
                [
                    dict(CHAOS_FANOUT_BRANCH_PARAMS, faults=plan)
                    for _kind, plan in plans
                ]
            )
        fanout_wall = time.perf_counter() - started
        forked = {
            kind: _chaos_branch_fingerprint(kind, result)
            for (kind, _plan), result in zip(plans, results)
        }
        perf = fleet.engine.perf.as_dict()
        del results, fleet

        cold_started = time.perf_counter()
        cold = {}
        for kind, plan in plans:
            live = warm_fleet(capture=False, **CHAOS_FANOUT_WARM_PARAMS)
            result = live.branch(faults=plan, **CHAOS_FANOUT_BRANCH_PARAMS)
            cold[kind] = _chaos_branch_fingerprint(kind, result)
            del live, result
            gc.collect()  # same per-leg discipline the fan-out side gets
        cold_wall = time.perf_counter() - cold_started

    speedup = cold_wall / fanout_wall
    base = BASELINE["chaos_fanout_4x12"]
    forked_matches_cold = forked == cold
    return {
        "wall_seconds": round(fanout_wall, 3),
        "baseline_wall_seconds": base["wall_seconds"],
        "warm_wall_seconds": round(warm_wall, 3),
        "cold_wall_seconds": round(cold_wall, 3),
        "speedup_vs_cold": round(speedup, 2),
        "speedup_target": CHAOS_FANOUT_SPEEDUP_TARGET,
        "meets_speedup_target": speedup >= CHAOS_FANOUT_SPEEDUP_TARGET,
        "branches": len(plans),
        "pages_shared_per_fork": pages_shared,
        "forked_matches_cold": forked_matches_cold,
        "fingerprint": forked,
        # A fork that diverges from its cold twin is a correctness bug
        # even when the pinned baseline hasn't caught up, so the CI gate
        # folds both comparisons together.
        "fingerprint_matches_baseline": (
            forked == base["fingerprint"] and forked_matches_cold
        ),
        "perf_counters": perf,
    }


#: Required wall-clock advantage of the matrix runner's warm-fork
#: grouping over the same variants run cold (one warm-up each).
MATRIX_EXPAND_SPEEDUP_TARGET = 2.0

#: The single-warm-group cell the speedup gate times: the seven
#: attacker-seed variants of the bursty/settled/shallow corner of the
#: detection-recall grid (one warm fleet, seven forked branches).  The
#: heavy churn + settle warm prefix against shallow probe branches is
#: the shape warm-fork grouping exists for.
MATRIX_SPEEDUP_CELL = "workload=bursty..ksm=settled..probe=shallow"

#: Clean-room child for one matrix leg: times one MatrixRunner pass
#: (warm-fork or cold) best-of-two and reports wall + the pinnable
#: surface.  Extra argv: spec_path, only-filter, "1"/"0" for warm_fork.
_MATRIX_LEG_CHILD = """\
import json, sys, time

src_dir, _bench_dir, spec_path, cell, warm = sys.argv[1:6]
sys.path.insert(0, src_dir)

from repro.matrix import MatrixRunner, MatrixSpec
from repro.sim.snapshot import heap_frozen

spec = MatrixSpec.load(spec_path)
walls = []
report = None
with heap_frozen():
    for _ in range(2):  # best-of-two, like _measure
        started = time.perf_counter()
        rerun = MatrixRunner(spec, warm_fork=warm == "1").run(only=cell)
        walls.append(time.perf_counter() - started)
        if report is not None and rerun.fingerprints() != report.fingerprints():
            raise AssertionError("matrix leg fingerprints differ between runs")
        report = rerun
print()
print(json.dumps({
    "wall": min(walls),
    "fingerprints": report.fingerprints(),
    "perf_deltas": [entry["perf_delta"] for entry in report.entries],
    "timed_variants": len(report.entries),
}))
"""


def _matrix_leg(spec_path, warm_fork):
    """Run one timed matrix leg clean-room (see :func:`_run_clean_room`)."""
    return _run_clean_room(
        _MATRIX_LEG_CHILD,
        spec_path,
        MATRIX_SPEEDUP_CELL,
        "1" if warm_fork else "0",
    )


def matrix_expand_entry():
    """Benchmark the scenario matrix: expansion scale + warm-fork payoff.

    Two checks share the entry.  First, the shipped detection-recall
    grid must expand to its full >=200 variants with IDs stable across
    back-to-back expansions (IDs derive from axis values, never from
    enumeration order).  Second, the runner's warm-fork grouping is
    timed against the cold comparator on one warm group
    (:data:`MATRIX_SPEEDUP_CELL`): the grouped run must beat cold by
    :data:`MATRIX_EXPAND_SPEEDUP_TARGET` while producing byte-identical
    fingerprints *and* perf deltas — the grouping decision may only
    show in the wall clock.

    Both timed legs run in fresh interpreters (see :func:`_matrix_leg`
    for why in-process timing can't hold a 2x ratio steady late in the
    report) and under ``heap_frozen`` for the same reason
    :func:`chaos_fanout_entry` uses it: the fork loop's own disposed
    branches are collector bait.
    """
    from repro.matrix import MatrixSpec, expand

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    spec_path = os.path.join(
        repo_root, "examples", "matrices", "detection_recall.cfg"
    )
    spec = MatrixSpec.load(spec_path)
    started = time.perf_counter()
    ids = [variant.variant_id for variant in expand(spec)]
    expand_wall = time.perf_counter() - started
    ids_stable = ids == [variant.variant_id for variant in expand(spec)]
    count_ok = len(ids) >= 200

    forked_leg = _matrix_leg(spec_path, warm_fork=True)
    cold_leg = _matrix_leg(spec_path, warm_fork=False)
    forked_wall = forked_leg["wall"]
    cold_wall = cold_leg["wall"]
    speedup = cold_wall / forked_wall
    fingerprint = forked_leg["fingerprints"]
    # Group bookkeeping legitimately differs (forked: true/false), so
    # the equality bar is the pinnable surface plus the perf deltas.
    forked_matches_cold = (
        fingerprint == cold_leg["fingerprints"]
        and forked_leg["perf_deltas"] == cold_leg["perf_deltas"]
    )

    base = BASELINE["matrix_expand_200"]
    return {
        "wall_seconds": round(forked_wall, 3),
        "baseline_wall_seconds": base["wall_seconds"],
        "expand_wall_seconds": round(expand_wall, 3),
        "variants_expanded": len(ids),
        "variant_count_ok": count_ok,
        "ids_stable": ids_stable,
        "timed_variants": forked_leg["timed_variants"],
        "cold_wall_seconds": round(cold_wall, 3),
        "speedup_vs_cold": round(speedup, 2),
        "speedup_target": MATRIX_EXPAND_SPEEDUP_TARGET,
        "within_budget": speedup >= MATRIX_EXPAND_SPEEDUP_TARGET,
        "forked_matches_cold": forked_matches_cold,
        "fingerprint": fingerprint,
        # Grouping must be invisible in results and the grid must keep
        # its shape, so the CI gate folds all the correctness bits in.
        "fingerprint_matches_baseline": (
            fingerprint == base["fingerprint"]
            and forked_matches_cold
            and ids_stable
            and count_ok
        ),
    }


#: Ceiling on the whole-catalog sweep's wall clock, relative to the
#: single-detector fleet_sweep_4x12 measured in the same process.  The
#: two extra probes are cheap by design (a capped VMI walk, three
#: census samples); the budget catches a probe that grows a hot loop.
PROBE_SCORE_RATIO_BUDGET = 1.5


def probe_score_entry():
    """Benchmark the whole-catalog sweep against the single detector.

    Runs fleet_sweep_4x12 with the default probe list (KSM timing
    only), then the identical fleet with all three catalog probes
    scheduled per tenant.  Two gates: the catalog sweep's wall clock
    must stay within :data:`PROBE_SCORE_RATIO_BUDGET` of the
    single-detector run, and the multi-probe virtual-time fingerprint
    — clock, compromised set, campaign recall, and the per-probe
    verdict census — is pinned against :data:`BASELINE`.
    """
    from repro.cloud import run_fleet

    single_wall, _single_fp, _ = _run_fleet_sweep()

    started = time.perf_counter()
    result = run_fleet(
        probes=("ksm_timing", "vmi_invariance", "dedup_spy"),
        **FLEET_SWEEP_PARAMS,
    )
    wall = time.perf_counter() - started
    engine = result.datacenter.engine
    sweep = result.monitor.reports[0]
    verdicts = {}
    for host_name in sorted(sweep.host_reports):
        for finding in sweep.host_reports[host_name].findings:
            for verdict in finding.probe_verdicts.values():
                bucket = verdicts.setdefault(verdict.probe, {})
                bucket[verdict.verdict] = bucket.get(verdict.verdict, 0) + 1
    fingerprint = {
        "virtual_now": engine.now,
        "tenants_probed": sweep.tenants_probed,
        "compromised": [f"{t}@{h}" for t, h in sweep.compromised],
        "recall": result.recall,
        "verdicts": verdicts,
    }
    ratio = wall / single_wall
    base = BASELINE["probe_score_4x12"]
    return {
        "wall_seconds": round(wall, 3),
        "baseline_wall_seconds": base["wall_seconds"],
        "single_detector_wall_seconds": round(single_wall, 3),
        "ratio_vs_single_detector": round(ratio, 2),
        "ratio_budget": PROBE_SCORE_RATIO_BUDGET,
        "within_budget": ratio <= PROBE_SCORE_RATIO_BUDGET,
        "fingerprint": fingerprint,
        "fingerprint_matches_baseline": fingerprint == base["fingerprint"],
        "perf_counters": engine.perf.as_dict(),
    }


#: The sharded-scaling shape: one rack-heavy fleet (16 hosts, 192
#: tenants) warmed once, then the attack/sweep branch run serial and
#: 4-way sharded off the same copy-on-write snapshot.  Zero churn keeps
#: the warm prefix cheap — the branch is what sharding parallelizes.
SHARDED_SWEEP_WARM_PARAMS = dict(
    hosts=16,
    tenants=192,
    seed=42,
    churn_operations=0,
    rebalance_moves=0,
)

SHARDED_SWEEP_BRANCH_PARAMS = dict(
    campaigns=1,
    sweeps=1,
    max_concurrent_probes=16,
    file_pages=12,
    wait_seconds=10.0,
)

SHARDED_SWEEP_SHARDS = 4

#: Required critical-path advantage of the 4-shard branch: serial
#: branch events dispatched over the busiest shard's branch events.
#: This is the wall-clock speedup a host with >= SHARDED_SWEEP_SHARDS
#: cores realizes, measured in a form that is deterministic (same seed
#: -> identical event counts) and so CI-stable on any machine,
#: including single-core runners where the worker processes timeshare
#: one core and the raw wall ratio measures the scheduler, not the
#: protocol.
SHARDED_SWEEP_SPEEDUP_TARGET = 2.0

#: Ceiling on shard 0's sync-message count for the whole branch.  The
#: send-cone horizons keep the mesh near-silent (~1.4k messages for
#: ~700k branch events); a regression to event-granularity lockstep
#: (hundreds of thousands of null messages) trips this long before it
#: shows up as wall-clock noise.
SHARDED_SWEEP_MESSAGE_BUDGET = 20_000


def _sharded_sweep_fingerprint(result):
    import hashlib

    engine = result.datacenter.engine
    sweep = result.monitor.reports[0]
    summary = result.summary()
    return {
        "virtual_now": engine.now,
        "tenants_probed": sweep.tenants_probed,
        "compromised": [f"{t}@{h}" for t, h in sweep.compromised],
        "recall": result.recall,
        "summary_sha256": hashlib.sha256(
            summary.encode("utf-8")
        ).hexdigest(),
    }


def sharded_sweep_entry():
    """Benchmark the sharded simulation core on a 16-host fleet.

    Warms one 16x192 fleet, snapshots it, then runs the identical
    attack/sweep branch twice off the snapshot: serial, and split
    :data:`SHARDED_SWEEP_SHARDS` ways across worker processes
    (`repro.cloud.sharding`).  Three gates:

    * the sharded branch's fingerprint (including a digest of the full
      run summary — the same surface the shard fin barrier diffs) must
      be byte-identical to the serial branch and to :data:`BASELINE`;
    * the **critical-path speedup** — serial branch events dispatched
      over the busiest shard's branch events — must meet
      :data:`SHARDED_SWEEP_SPEEDUP_TARGET`.  Event counts are
      deterministic, so this gate is machine-independent; it equals the
      achievable wall-clock speedup once each worker has its own core.
      The raw wall ratio is recorded (with ``os.cpu_count()``) but not
      gated: on a single-core runner the workers timeshare the CPU and
      the wall ratio measures the kernel scheduler, not this protocol;
    * shard 0's sync-message count must stay under
      :data:`SHARDED_SWEEP_MESSAGE_BUDGET` — the horizon protocol's
      overhead bound, which *is* meaningful on any core count.

    Single-pass (the serial/sharded diff doubles as the determinism
    check), under ``heap_frozen`` like the other fork-based entries.
    """
    import gc

    from repro.cloud import warm_fleet
    from repro.sim.snapshot import heap_frozen

    with heap_frozen():
        started = time.perf_counter()
        fleet = warm_fleet(**SHARDED_SWEEP_WARM_PARAMS)
        warm_wall = time.perf_counter() - started
        warm_events = fleet.engine.perf.events_dispatched
        with fleet:
            started = time.perf_counter()
            serial = fleet.branch(**SHARDED_SWEEP_BRANCH_PARAMS)
            serial_wall = time.perf_counter() - started
            serial_events = (
                serial.datacenter.engine.perf.events_dispatched - warm_events
            )
            serial_fp = _sharded_sweep_fingerprint(serial)
            del serial
            gc.collect()
            started = time.perf_counter()
            sharded = fleet.branch(
                shards=SHARDED_SWEEP_SHARDS, **SHARDED_SWEEP_BRANCH_PARAMS
            )
            sharded_wall = time.perf_counter() - started
            sharded_fp = _sharded_sweep_fingerprint(sharded)
            stats = sharded.shard_stats
            perf = sharded.datacenter.engine.perf.as_dict()

    shard_events = {
        shard: extra["events_dispatched"] - warm_events
        for shard, extra in stats["per_shard"].items()
    }
    speedup = serial_events / max(shard_events.values())
    messages_ok = stats["messages_sent"] <= SHARDED_SWEEP_MESSAGE_BUDGET
    sharded_matches_serial = sharded_fp == serial_fp
    base = BASELINE["sharded_sweep_16x"]
    return {
        "wall_seconds": round(sharded_wall, 3),
        "baseline_wall_seconds": base["wall_seconds"],
        "warm_wall_seconds": round(warm_wall, 3),
        "serial_wall_seconds": round(serial_wall, 3),
        "wall_speedup_vs_serial": round(serial_wall / sharded_wall, 2),
        "cpu_count": os.cpu_count(),
        "shards": SHARDED_SWEEP_SHARDS,
        "serial_branch_events": serial_events,
        "shard_branch_events": {
            str(shard): events for shard, events in sorted(shard_events.items())
        },
        "critical_path_speedup": round(speedup, 2),
        "speedup_target": SHARDED_SWEEP_SPEEDUP_TARGET,
        "messages_sent": stats["messages_sent"],
        "message_budget": SHARDED_SWEEP_MESSAGE_BUDGET,
        "blocked_waits": stats["blocked_waits"],
        "ghosts_injected": stats["ghosts_injected"],
        "within_budget": (
            speedup >= SHARDED_SWEEP_SPEEDUP_TARGET and messages_ok
        ),
        "sharded_matches_serial": sharded_matches_serial,
        "fingerprint": sharded_fp,
        # A sharded run that diverges from its serial twin is a
        # correctness bug regardless of the pinned baseline, so the CI
        # gate folds both comparisons together.
        "fingerprint_matches_baseline": (
            sharded_fp == base["fingerprint"] and sharded_matches_serial
        ),
        "perf_counters": perf,
    }


def scenario_chaos_recall():
    """Detection recall/latency on fleet_sweep_4x12 under the ``mixed``
    fault mix — one chaos leg, seeded, so the scorecard is a virtual-time
    fingerprint like every other scenario."""
    from repro.faults import ChaosCampaign

    started = time.perf_counter()
    campaign = ChaosCampaign(
        seed=42, mixes=("mixed",), faults_per_mix=5, horizon=240.0
    )
    report = campaign.run()
    wall = time.perf_counter() - started
    entry = report.entries[0]
    fingerprint = {
        "campaigns": entry["campaigns"],
        "detected": entry["detected"],
        "faults_injected": entry["faults_injected"],
        "faults_recovered": entry["faults_recovered"],
        "mean_detection_latency": entry["mean_detection_latency"],
        "recall": entry["recall"],
        "tenants_degraded": entry["tenants_degraded"],
        "tenants_running": entry["tenants_running"],
        "unreachable_findings": entry["unreachable_findings"],
        "virtual_now": entry["virtual_time"],
    }
    perf = campaign.results[0].datacenter.engine.perf.as_dict()
    return wall, fingerprint, perf


def scenario_lmbench_l2():
    from repro import scenarios
    from repro.workloads.lmbench.proc import LmbenchProc

    started = time.perf_counter()
    host, system = scenarios.system_at_level(2, seed=123)
    result = host.engine.run(LmbenchProc().start(system, repetition_scale=0.25))
    fingerprint = {"latencies_us": result.metrics["latencies_us"]}
    return time.perf_counter() - started, fingerprint, host.engine.perf.as_dict()


def scenario_migration_dedup():
    """Deduplicated pre-copy under a KSM-heavy tenant.

    The victim guest fills its page cache with 4 x 12 template pages,
    each duplicated 40-fold (the kind of footprint KSM thrives on),
    then migrates twice: once plain, once with the ``dedup`` capability
    set through the monitor.  The fingerprint pins both wire footprints
    — the dedup run must move the same page population (identical
    destination-side writes) in strictly fewer bytes.
    """
    import hashlib

    from repro import scenarios
    from repro.hypervisor.ksm import KsmDaemon
    from repro.qemu.config import DriveSpec
    from repro.qemu.qemu_img import qemu_img_create
    from repro.qemu.vm import launch_vm

    def one_migration(dedup):
        host = scenarios.testbed(seed=42)
        vm = scenarios.launch_victim(host)
        ksm = KsmDaemon(host.machine)
        ksm.start()
        memory = vm.guest.memory
        for group in range(4):
            for template in range(12):
                content = hashlib.blake2b(
                    f"dedup:{group}:{template}".encode("utf-8"),
                    digest_size=48,
                ).digest()
                for _ in range(40):
                    memory.write(memory.alloc_page(), content)
        if dedup:
            vm.monitor.execute("migrate_set_capability dedup on")
        qemu_img_create(host, "/var/lib/images/dest.qcow2", 20)
        config = vm.config.clone_for_destination(
            "dest0", incoming_port=4444, keep_hostfwds=False
        )
        config.drives = [DriveSpec("/var/lib/images/dest.qcow2")]
        launch_vm(host, config)
        migration_started = host.engine.now
        vm.monitor.execute("migrate -d tcp:127.0.0.1:4444")
        host.engine.run(vm.migration_process)
        stats = vm.migration_stats
        return (
            {
                "status": stats.status,
                "ram_bytes": stats.ram_bytes,
                "pages_transferred": stats.pages_transferred,
                "pages_deduped": stats.pages_deduped,
                "zero_pages": stats.zero_pages,
                "iterations": stats.iterations,
                "migration_virtual_seconds": host.engine.now
                - migration_started,
            },
            host.engine.perf.as_dict(),
        )

    started = time.perf_counter()
    plain, _ = one_migration(dedup=False)
    dedup, perf = one_migration(dedup=True)
    fingerprint = {
        "plain": plain,
        "dedup": dedup,
        "wire_savings_pct": round(
            100.0 * (1.0 - dedup["ram_bytes"] / plain["ram_bytes"]), 2
        ),
    }
    return time.perf_counter() - started, fingerprint, perf


SCENARIOS = (
    ("detection_under_io", scenario_detection_io),
    ("fig4_migration_filebench", scenario_fig4_migration),
    ("lmbench_l2_proc", scenario_lmbench_l2),
    ("fleet_sweep_4x12", scenario_fleet_sweep),
    ("chaos_recall_4x12", scenario_chaos_recall),
    ("migration_dedup_4x12", scenario_migration_dedup),
)


def _measure(fn):
    """Run a scenario twice and keep the faster wall clock.

    The BASELINE numbers are best-of-two (see the note above BASELINE);
    measuring the same way keeps the comparison symmetric and damps
    transient machine load.  The second run doubles as a determinism
    check: both fingerprints must be byte-identical.
    """
    wall_a, fingerprint, perf = fn()
    wall_b, fingerprint_b, _perf_b = fn()
    if fingerprint_b != fingerprint:
        raise AssertionError(
            "scenario fingerprints differ between back-to-back runs: "
            f"{fingerprint!r} vs {fingerprint_b!r}"
        )
    return min(wall_a, wall_b), fingerprint, perf


def _run_scenario_by_name(name):
    """Pool worker: run one scenario in its own process."""
    fn = dict(SCENARIOS)[name]
    return name, _measure(fn)


def run_report(quick=False, parallel=False):
    names = [
        name
        for name, _ in SCENARIOS
        if not (quick and name != "detection_under_io")
    ]
    results = {}
    if parallel and len(names) > 1:
        import multiprocessing

        method = (
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else None
        )
        ctx = multiprocessing.get_context(method)
        workers = min(len(names), os.cpu_count() or 1)
        print(
            f"[bench] running {len(names)} scenarios across "
            f"{workers} processes",
            flush=True,
        )
        with ctx.Pool(workers) as pool:
            # imap_unordered for throughput; the merge below re-imposes
            # SCENARIOS order, so the report is order-independent.
            for name, outcome in pool.imap_unordered(
                _run_scenario_by_name, names
            ):
                results[name] = outcome
    report = {}
    for name, fn in SCENARIOS:
        if name not in names:
            continue
        if name in results:
            wall, fingerprint, perf = results[name]
        else:
            print(f"[bench] {name} ...", flush=True)
            wall, fingerprint, perf = _measure(fn)
        base = BASELINE[name]
        entry = {
            "wall_seconds": round(wall, 3),
            "baseline_wall_seconds": base["wall_seconds"],
            "improvement_pct": round(
                100.0 * (1.0 - wall / base["wall_seconds"]), 1
            ),
            "fingerprint": fingerprint,
            "fingerprint_matches_baseline": fingerprint == base["fingerprint"],
            "perf_counters": perf,
        }
        report[name] = entry
        match = "match" if entry["fingerprint_matches_baseline"] else "MISMATCH"
        print(
            f"[bench] {name}: {wall:.3f}s vs baseline "
            f"{base['wall_seconds']:.3f}s "
            f"({entry['improvement_pct']:+.1f}% faster), fingerprint {match}"
        )
    # Tracer overhead runs in quick mode too: `make bench-quick` is the
    # gate that keeps observability off the hot path.
    print("[bench] tracer_overhead_fleet ...", flush=True)
    entry = tracer_overhead_entry()
    report["tracer_overhead_fleet"] = entry
    budget = "within budget" if entry["within_budget"] else "OVER BUDGET"
    print(
        f"[bench] tracer_overhead_fleet: traced "
        f"{entry['traced_wall_seconds']:.3f}s vs untraced "
        f"{entry['untraced_wall_seconds']:.3f}s "
        f"({entry['overhead_pct']:+.1f}%, budget "
        f"{entry['overhead_budget_pct']:.0f}%) {budget}, "
        f"{entry['trace_events']} events"
    )
    # The snapshot/fork payoff check runs in quick mode too: fork
    # determinism (forked == cold fingerprints) is part of its gate.
    print("[bench] chaos_fanout_4x12 ...", flush=True)
    entry = chaos_fanout_entry()
    report["chaos_fanout_4x12"] = entry
    match = "match" if entry["fingerprint_matches_baseline"] else "MISMATCH"
    target = "meets" if entry["meets_speedup_target"] else "MISSES"
    print(
        f"[bench] chaos_fanout_4x12: fan-out {entry['wall_seconds']:.3f}s "
        f"(warm {entry['warm_wall_seconds']:.3f}s) vs cold "
        f"{entry['cold_wall_seconds']:.3f}s — {entry['speedup_vs_cold']:.2f}x "
        f"({target} {entry['speedup_target']:.1f}x target), "
        f"{entry['pages_shared_per_fork']} pages shared/fork, "
        f"fingerprint {match}"
    )
    # The matrix gate runs in quick mode too: expansion shape and the
    # warm-fork speedup both guard shipped example specs.
    print("[bench] matrix_expand_200 ...", flush=True)
    entry = matrix_expand_entry()
    report["matrix_expand_200"] = entry
    match = "match" if entry["fingerprint_matches_baseline"] else "MISMATCH"
    target = "meets" if entry["within_budget"] else "MISSES"
    print(
        f"[bench] matrix_expand_200: {entry['variants_expanded']} variants "
        f"expanded in {entry['expand_wall_seconds']:.3f}s; warm-fork "
        f"{entry['wall_seconds']:.3f}s vs cold "
        f"{entry['cold_wall_seconds']:.3f}s — {entry['speedup_vs_cold']:.2f}x "
        f"({target} {entry['speedup_target']:.1f}x target), "
        f"fingerprint {match}"
    )
    # The probe-catalog gate runs in quick mode too: scheduling the
    # whole catalog per tenant must never blow up the sweep wall clock.
    print("[bench] probe_score_4x12 ...", flush=True)
    entry = probe_score_entry()
    report["probe_score_4x12"] = entry
    match = "match" if entry["fingerprint_matches_baseline"] else "MISMATCH"
    target = "within" if entry["within_budget"] else "OVER"
    print(
        f"[bench] probe_score_4x12: catalog sweep "
        f"{entry['wall_seconds']:.3f}s vs single-detector "
        f"{entry['single_detector_wall_seconds']:.3f}s — "
        f"{entry['ratio_vs_single_detector']:.2f}x ({target} "
        f"{entry['ratio_budget']:.1f}x budget), fingerprint {match}"
    )
    # The sharded-core gate: skipped in quick mode (its 16x192 fleet is
    # the suite's heaviest shape); the full run and CI's shard-smoke job
    # both exercise it.
    if not quick:
        print("[bench] sharded_sweep_16x ...", flush=True)
        entry = sharded_sweep_entry()
        report["sharded_sweep_16x"] = entry
        match = "match" if entry["fingerprint_matches_baseline"] else "MISMATCH"
        target = "meets" if entry["within_budget"] else "MISSES"
        print(
            f"[bench] sharded_sweep_16x: {entry['shards']}-shard branch "
            f"{entry['wall_seconds']:.3f}s vs serial "
            f"{entry['serial_wall_seconds']:.3f}s on {entry['cpu_count']} "
            f"cpu(s); critical-path {entry['critical_path_speedup']:.2f}x "
            f"({target} {entry['speedup_target']:.1f}x target), "
            f"{entry['messages_sent']} sync messages, fingerprint {match}"
        )
    return report


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="run only the detection-under-IO scenario",
    )
    parser.add_argument(
        "--parallel",
        action="store_true",
        help=(
            "run scenarios across a multiprocessing pool (results "
            "merged deterministically by scenario name)"
        ),
    )
    parser.add_argument(
        "-o",
        "--output",
        default=None,
        help=(
            "where to write the JSON report (default: repo-root "
            "BENCH_core.json, or BENCH_core.quick.json with --quick so a "
            "quick run never clobbers the full trajectory)"
        ),
    )
    parser.add_argument(
        "--history",
        default=None,
        metavar="PATH",
        help=(
            "append-only perf ledger (default: repo-root "
            "BENCH_history.jsonl); BENCH_core.json is overwritten per "
            "run, the ledger keeps the trajectory"
        ),
    )
    parser.add_argument(
        "--no-history",
        action="store_true",
        help="skip appending this run to the history ledger",
    )
    args = parser.parse_args(argv)
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    if args.output is None:
        name = "BENCH_core.quick.json" if args.quick else "BENCH_core.json"
        args.output = os.path.join(repo_root, name)
    report = run_report(quick=args.quick, parallel=args.parallel)
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"[bench] wrote {args.output}")
    if not args.no_history:
        from repro.obs.history import append_bench_history, bench_history_record

        history_path = args.history or os.path.join(
            repo_root, "BENCH_history.jsonl"
        )
        append_bench_history(
            history_path, bench_history_record(report, quick=args.quick)
        )
        print(f"[bench] appended to {history_path}")
    mismatched = [
        name
        for name, entry in report.items()
        if not entry["fingerprint_matches_baseline"]
    ]
    if mismatched:
        print(f"[bench] FINGERPRINT MISMATCH: {', '.join(mismatched)}")
        return 1
    over_budget = [
        name
        for name, entry in report.items()
        if not entry.get("within_budget", True)
    ]
    if over_budget:
        print(f"[bench] TRACER OVERHEAD OVER BUDGET: {', '.join(over_budget)}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
