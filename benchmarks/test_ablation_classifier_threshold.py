"""Ablation: the classifier's operating band.

The verdict rule compares medians against ``ratio_threshold`` x the t0
baseline.  Because CoW faults sit three orders of magnitude above plain
writes, the detector should not care where in a very wide band the
threshold sits — this bench sweeps it across two decades and checks the
verdicts never move.  (A knife-edge threshold would be a red flag that
the reproduction had been tuned to pass.)
"""

import pytest

from repro import scenarios
from repro.analysis.report import render_table
from repro.core.detection.classifier import classify
from repro.core.detection.dedup_detector import DedupDetector

THRESHOLDS = (2.0, 8.0, 50.0, 200.0)


@pytest.mark.figure("ablation-threshold")
def test_ablation_classifier_threshold(benchmark):
    def run_all():
        reports = {}
        for nested in (False, True):
            host, cloud, _ksm, _loc = scenarios.detection_setup(
                nested=nested, seed=901
            )
            detector = DedupDetector(host, cloud, file_pages=25)
            reports[nested] = host.engine.run(
                host.engine.process(detector.run())
            )
        matrix = {}
        for nested, report in reports.items():
            for threshold in THRESHOLDS:
                verdict = classify(
                    report.t0_us,
                    report.t1_us,
                    report.t2_us,
                    ratio_threshold=threshold,
                )
                matrix[(nested, threshold)] = verdict.verdict
        return matrix

    matrix = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for threshold in THRESHOLDS:
        rows.append(
            [
                f"{threshold:g}x",
                matrix[(False, threshold)],
                matrix[(True, threshold)],
            ]
        )
    print()
    print(
        render_table(
            "Verdict vs classifier threshold (same raw measurements)",
            ["threshold", "clean host", "CloudSkulk"],
            rows,
            col_width=16,
        )
    )

    for threshold in THRESHOLDS:
        assert matrix[(False, threshold)] == "clean"
        assert matrix[(True, threshold)] == "nested"
