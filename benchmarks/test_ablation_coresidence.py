"""Ablation: co-residence interference (related work §VII-B).

The co-residence literature the paper surveys ([55, 59]) turns shared
hosts into attack surface.  Our scheduler model makes the basic effect
measurable: CPU-bound work stretches once busy vCPUs oversubscribe the
package.  This bench sweeps co-resident busy tenants against the
victim's compile time — also a sanity check that the paper's own
single-tenant benchmarks ran interference-free (they did: 1 busy guest
on 8 logical CPUs).
"""

import pytest

from repro import scenarios
from repro.analysis.report import render_table
from repro.workloads.kernel_compile import KernelCompileWorkload

TENANT_SWEEP = (0, 4, 8, 16)


def _compile_with_hogs(extra_busy, seed=55):
    host = scenarios.testbed(seed=seed)
    vm = scenarios.launch_victim(host)
    scheduler = host.machine.scheduler
    hogs = [object() for _ in range(extra_busy)]
    for hog in hogs:
        scheduler.occupy(hog)
    try:
        result = host.engine.run(
            KernelCompileWorkload(units=400).start(vm.guest)
        )
    finally:
        for hog in hogs:
            scheduler.release(hog)
    return result.metrics["build_seconds"]


@pytest.mark.figure("ablation-coresidence")
def test_ablation_coresidence(benchmark):
    def run_all():
        return {n: _compile_with_hogs(n) for n in TENANT_SWEEP}

    times = benchmark.pedantic(run_all, rounds=1, iterations=1)

    baseline = times[0]
    rows = [
        [f"{n} co-resident busy vCPUs", t, t / baseline]
        for n, t in times.items()
    ]
    print()
    print(
        render_table(
            "Ablation: victim compile time vs co-residents (8 logical CPUs)",
            ["scenario", "build (s)", "slowdown"],
            rows,
            col_width=18,
        )
    )

    # Up to 7 extra busy tenants: no interference (8 cores, 8 busy).
    assert times[4] == pytest.approx(baseline, rel=0.02)
    # 8 extra (9 busy on 8 cores): ~9/8 stretch.
    assert times[8] / baseline == pytest.approx(9 / 8, rel=0.05)
    # 16 extra (17 busy): ~17/8 stretch.
    assert times[16] / baseline == pytest.approx(17 / 8, rel=0.05)
