"""Table II: lmbench arithmetic operation latencies (ns) at L0/L1/L2.

Paper: virtualization — including nested virtualization — has a
negligible effect on all arithmetic operations (L2 within ~3-4%).
"""

import pytest

from repro import scenarios
from repro.analysis.report import render_table
from repro.workloads.lmbench.arith import ARITH_OPS, LmbenchArith

PAPER = {
    "L0": [0.26, 0.13, 5.94, 6.37, 0.75, 1.25, 3.31, 0.75, 1.25, 5.06],
    "L1": [0.25, 0.13, 5.96, 6.39, 0.75, 1.26, 3.32, 0.75, 1.26, 5.07],
    "L2": [0.26, 0.13, 6.14, 6.59, 0.78, 1.30, 3.43, 0.78, 1.30, 5.23],
}


@pytest.mark.figure("table2")
def test_table2_lmbench_arith(benchmark):
    def run_all():
        out = {}
        for level in (0, 1, 2):
            host, system = scenarios.system_at_level(level, seed=123)
            result = host.engine.run(
                LmbenchArith().start(system, iterations=10_000)
            )
            out[level] = result.metrics["latencies_ns"]
        return out

    measured = benchmark.pedantic(run_all, rounds=1, iterations=1)

    columns = ["Config"] + list(ARITH_OPS)
    rows = [
        [f"L{level}"] + [measured[level][op] for op in ARITH_OPS]
        for level in (0, 1, 2)
    ]
    print()
    print(render_table("TABLE II: lmbench arithmetic (ns)", columns, rows, col_width=12))
    print("paper rows:", PAPER)

    for index, op in enumerate(ARITH_OPS):
        # L0 matches the paper by construction (it is the model input).
        assert measured[0][op] == pytest.approx(PAPER["L0"][index], rel=0.05)
        # L1 indistinguishable from native (within measurement noise),
        # L2 a few percent above.
        assert measured[1][op] / measured[0][op] < 1.03
        ratio_l2 = measured[2][op] / measured[0][op]
        assert 1.005 < ratio_l2 < 1.08
