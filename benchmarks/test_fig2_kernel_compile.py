"""Fig 2: Linux kernel compile timing at L0 / L1 / L2.

Paper: +280% L0->L1 (the ccache confound — ccache worked on L0 only,
their footnote 1) and +25.7% L1->L2 (the rootkit's perceived cost).
"""

import pytest

from repro import scenarios
from repro.analysis.report import render_comparison_labels, render_figure_series
from repro.analysis.stats import pct_increase, summarize
from repro.workloads.kernel_compile import KernelCompileWorkload

PAPER_L0_TO_L1_PCT = 280.0
PAPER_L1_TO_L2_PCT = 25.7


def _compile_at(level, seed):
    workload = KernelCompileWorkload(ccache_enabled=(level == 0))
    result = scenarios.run_level(level, workload, seed=seed)
    return result.metrics["build_seconds"]


@pytest.mark.figure("fig2")
def test_fig2_kernel_compile(benchmark, seeds):
    def run_all():
        return {
            level: [_compile_at(level, seed) for seed in seeds]
            for level in (0, 1, 2)
        }

    samples = benchmark.pedantic(run_all, rounds=1, iterations=1)
    series = {f"L{level}": summarize(samples[level]) for level in (0, 1, 2)}

    print()
    print(render_figure_series("Fig 2: Kernel compile time", series, unit="s"))
    print(
        render_comparison_labels(
            [
                ("L0", series["L0"].mean, "L1", series["L1"].mean),
                ("L1", series["L1"].mean, "L2", series["L2"].mean),
            ]
        )
    )
    print(f"paper: L0->L1 +{PAPER_L0_TO_L1_PCT}%, L1->L2 +{PAPER_L1_TO_L2_PCT}%")

    l0_l1 = pct_increase(series["L0"].mean, series["L1"].mean)
    l1_l2 = pct_increase(series["L1"].mean, series["L2"].mean)
    # Shape: the ccache confound lands in the same band as the paper's
    # 280%, and the rootkit's compile overhead within a third of 25.7%.
    assert 200 < l0_l1 < 360
    assert 17 < l1_l2 < 34
    # RSD bars stay small, as in the figure.
    for summary in series.values():
        assert summary.rsd_percent < 10
