"""Ablation: the "wait for a while" in the detection protocol (§VI-B).

KSM needs two clean scan passes over a page before merging it, so the
detector's settle time must cover at least two full scans at the
configured ksmd rate.  This bench sweeps the wait against a slow ksmd
and shows the protocol degrading to *inconclusive* (never to a wrong
verdict) when rushed — the failure is safe.
"""

import pytest

from repro import scenarios
from repro.analysis.report import render_table
from repro.core.detection.dedup_detector import DedupDetector

#: (ksmd pages per wake, detector wait seconds)
SWEEP = (
    (1250, 20.0),   # the defaults: comfortable
    (1250, 4.0),    # fast scanner, short wait: still fine
    (100, 2.0),     # slow scanner, rushed wait: must not merge in time
)


def _run(pages_to_scan, wait_seconds, seed=101):
    host, cloud, _ksm, _loc = scenarios.detection_setup(
        nested=True, seed=seed, ksm_pages_to_scan=pages_to_scan
    )
    detector = DedupDetector(host, cloud, wait_seconds=wait_seconds)
    report = host.engine.run(host.engine.process(detector.run()))
    return report.verdict.verdict


@pytest.mark.figure("ablation-ksm-wait")
def test_ablation_ksm_wait(benchmark):
    def run_all():
        return {
            (pages, wait): _run(pages, wait) for pages, wait in SWEEP
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [f"{pages}p/20ms", wait, verdict]
        for (pages, wait), verdict in results.items()
    ]
    print()
    print(
        render_table(
            "Ablation: verdict vs ksmd rate and settle wait",
            ["ksmd rate", "wait (s)", "verdict"],
            rows,
            col_width=14,
        )
    )

    assert results[(1250, 20.0)] == "nested"
    assert results[(1250, 4.0)] == "nested"
    # Rushing a slow scanner degrades safely to inconclusive.
    assert results[(100, 2.0)] == "inconclusive"
