"""Statistical evaluation: detection accuracy over many trials.

The paper demonstrates effectiveness on one setup of each kind; this
bench runs the full protocol over a battery of independently seeded
hosts — clean and compromised — and reports the confusion matrix.
The claim under test: zero false positives and zero false negatives
at the default operating point.
"""

import pytest

from repro import scenarios
from repro.analysis.report import render_table
from repro.core.detection.dedup_detector import DedupDetector

TRIALS = 12


def _verdict(nested, seed):
    host, cloud, _ksm, _loc = scenarios.detection_setup(nested=nested, seed=seed)
    detector = DedupDetector(host, cloud, file_pages=25)
    report = host.engine.run(host.engine.process(detector.run()))
    return report.verdict.verdict


@pytest.mark.figure("detection-accuracy")
def test_detection_accuracy(benchmark):
    def run_all():
        clean = [_verdict(False, 1000 + i) for i in range(TRIALS)]
        nested = [_verdict(True, 2000 + i) for i in range(TRIALS)]
        return clean, nested

    clean, nested = benchmark.pedantic(run_all, rounds=1, iterations=1)

    true_negative = clean.count("clean")
    false_positive = clean.count("nested")
    true_positive = nested.count("nested")
    false_negative = nested.count("clean")
    inconclusive = clean.count("inconclusive") + nested.count("inconclusive")

    print()
    print(
        render_table(
            f"Detection confusion matrix over {TRIALS}+{TRIALS} trials",
            ["truth \\ verdict", "clean", "nested"],
            [
                ["clean host", true_negative, false_positive],
                ["CloudSkulk", false_negative, true_positive],
            ],
            col_width=16,
        )
    )
    print(f"inconclusive runs: {inconclusive}")

    assert false_positive == 0
    assert false_negative == 0
    assert inconclusive == 0
    assert true_negative == TRIALS
    assert true_positive == TRIALS
