"""Fig 5: detection timings t0/t1/t2 with NO nested VM.

Paper: t1 is significantly larger than t2, and t2 ≈ t0 — the step-1
merge partner (the guest's File-A) disappeared in step 2 when the guest
changed its copy, so fresh L0 pages stay private.
"""

import statistics

import pytest

from repro import scenarios
from repro.analysis.report import render_figure_series
from repro.analysis.stats import summarize
from repro.core.detection.dedup_detector import DedupDetector


def _run_detection(nested, seed):
    host, cloud, _ksm, _loc = scenarios.detection_setup(nested=nested, seed=seed)
    detector = DedupDetector(host, cloud)
    return host.engine.run(host.engine.process(detector.run()))


@pytest.mark.figure("fig5")
def test_fig5_detection_no_nested(benchmark):
    report = benchmark.pedantic(
        lambda: _run_detection(False, 101), rounds=1, iterations=1
    )

    series = {
        "t0 (baseline)": summarize(report.t0_us),
        "t1 (merged)": summarize(report.t1_us),
        "t2 (after guest edit)": summarize(report.t2_us),
    }
    print()
    print(
        render_figure_series(
            "Fig 5: per-page write times, no nested VM", series, unit="us",
            label_width=24,
        )
    )
    print("verdict:", report.verdict.verdict, "—", report.verdict.explanation())

    m0 = statistics.median(report.t0_us)
    m1 = statistics.median(report.t1_us)
    m2 = statistics.median(report.t2_us)
    assert m1 > 50 * m2           # t1 significantly larger than t2
    assert m2 == pytest.approx(m0, rel=0.6)  # t2 similar to t0
    assert report.verdict.verdict == "clean"


@pytest.mark.figure("fig5")
def test_fig5_repeatable_across_seeds(benchmark, seeds):
    def run_all():
        return [_run_detection(False, seed).verdict.verdict for seed in seeds[:3]]

    verdicts = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print("\nverdicts across seeds:", verdicts)
    assert verdicts == ["clean"] * 3
