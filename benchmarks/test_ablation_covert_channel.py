"""Ablation: the dedup side channel's bandwidth/reliability trade-off.

The detection mechanism (§VI) and the covert channel of refs [41, 42]
share one physics: KSM needs two clean scan passes before a merge shows
up in write timing.  Sweeping the channel's settle period demonstrates
the cliff — rush the settle below two passes and the channel (like a
rushed detector) reads silence; respect it and the message arrives
intact at a bandwidth set by the settle period.
"""

import pytest

from repro import scenarios
from repro.analysis.report import render_table
from repro.hypervisor.ksm import KsmDaemon
from repro.sidechannel import DedupCovertChannel

SETTLE_SWEEP = (0.2, 2.0, 6.0)
PAYLOAD = b"\xa5\x5a"


def _run_channel(settle, seed=99):
    host = scenarios.testbed(seed=seed)
    sender = scenarios.launch_victim(
        host,
        scenarios.victim_config(
            name="s", image="/i/s.qcow2", ssh_host_port=2301, monitor_port=5601
        ),
    )
    receiver = scenarios.launch_victim(
        host,
        scenarios.victim_config(
            name="r", image="/i/r.qcow2", ssh_host_port=2302, monitor_port=5602
        ),
    )
    KsmDaemon(host.machine).start()
    channel = DedupCovertChannel(
        sender.guest, receiver.guest, seed="rv", bits_per_frame=8
    )
    process = host.engine.process(
        channel.transmit(PAYLOAD, settle_seconds=settle)
    )
    received, elapsed, bps = host.engine.run(process)
    return received, bps


@pytest.mark.figure("ablation-covert")
def test_ablation_covert_channel_settle(benchmark):
    def run_all():
        return {settle: _run_channel(settle) for settle in SETTLE_SWEEP}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for settle, (received, bps) in results.items():
        ok = "intact" if received == PAYLOAD else "corrupt"
        rows.append([f"settle {settle}s", ok, bps])
    print()
    print(
        render_table(
            "Ablation: covert channel vs KSM settle period",
            ["config", "payload", "bit/s"],
            rows,
            col_width=16,
        )
    )

    # Below two ksmd passes nothing merges: the channel reads all-zero.
    rushed, _bps = results[0.2]
    assert rushed == b"\x00\x00"
    # With a comfortable settle, the payload survives.
    assert results[2.0][0] == PAYLOAD
    assert results[6.0][0] == PAYLOAD
    # Bandwidth falls as settle grows.
    assert results[2.0][1] > results[6.0][1]
