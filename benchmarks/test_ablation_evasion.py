"""Ablation: the §VI-D evasion attempt, quantified.

"When File-A is changed to File-A-v2 in L2, in theory, attackers in L1
can do the same change in L1. However, in reality, this would not
really help attackers evade detection."

This bench demonstrates *both* halves of the argument:

1. mechanically, a page-sync evasion that mirrors the victim's edits
   into L1 does flip the detector's verdict back to "clean" for the
   tracked file — the attack surface is real;
2. practically, it cannot be sustained: the per-change cost measured
   here, extrapolated to the page population an attacker would have to
   track (they cannot know which file the defender will pick), exceeds
   the machine's capacity — and the required L1 hook is itself a
   kernel-integrity violation a monitor would flag.
"""

import pytest

from repro import scenarios
from repro.core.detection.dedup_detector import DedupDetector
from repro.core.rootkit.services import PageSyncEvasion


def _detect_with_evasion(seed=101):
    host, cloud, _ksm, locator = scenarios.detection_setup(nested=True, seed=seed)
    guestx = cloud.observers[0].guestx
    detector = DedupDetector(host, cloud)
    evasion = PageSyncEvasion(locator(), guestx, [detector.file_path])
    evasion.enable()
    report = host.engine.run(host.engine.process(detector.run()))
    return report, evasion, guestx


@pytest.mark.figure("ablation-evasion")
def test_ablation_page_sync_evasion(benchmark):
    report, evasion, guestx = benchmark.pedantic(
        _detect_with_evasion, rounds=1, iterations=1
    )

    print()
    print(f"verdict with evasion active: {report.verdict.verdict}")
    print(f"pages synced: {evasion.syncs}, total L1 cost {evasion.total_cost * 1e3:.2f} ms")
    per_page_ms = evasion.total_cost / max(evasion.syncs, 1) * 1e3
    print(f"per-change sync cost: {per_page_ms:.3f} ms")
    projected = evasion.projected_cost_per_second(1_000_000, 1 / 60)
    print(
        f"projected L1 CPU burn tracking 1M pages changing 1/min: "
        f"{projected:.1f} CPU-seconds per second"
    )
    print(f"L1 kernel-integrity flag tripped: {guestx.kernel.hypervisor_code_modified}")

    # Half 1: the evasion works mechanically on the tracked file.
    assert report.verdict.verdict == "clean"
    assert evasion.syncs == 100
    # Half 2: it cannot scale, and it is detectable.
    assert projected > 5.0
    assert guestx.kernel.hypervisor_code_modified


@pytest.mark.figure("ablation-evasion")
def test_evasion_fails_for_untracked_file(benchmark):
    """The attacker must guess the defender's file; missing it loses."""

    def run():
        host, cloud, _ksm, locator = scenarios.detection_setup(
            nested=True, seed=202
        )
        guestx = cloud.observers[0].guestx
        evasion = PageSyncEvasion(
            locator(), guestx, ["/some/other/file.bin"]
        )
        evasion.enable()
        detector = DedupDetector(host, cloud)
        return host.engine.run(host.engine.process(detector.run()))

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nverdict when the evasion tracks the wrong file: {report.verdict.verdict}")
    assert report.verdict.verdict == "nested"
