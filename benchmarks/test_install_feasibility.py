"""§V-A (the demo video): installation feasibility and speed.

Paper: the whole installation, dominated by the live migration, takes
under a minute on an idle guest, on a single physical machine.
"""

import pytest

from repro import scenarios
from repro.workloads.idle import IdleWorkload


@pytest.mark.figure("install")
def test_install_feasibility(benchmark, seeds):
    def run_all():
        reports = []
        for seed in seeds:
            host = scenarios.testbed(seed=seed)
            vm = scenarios.launch_victim(host)
            workload = IdleWorkload()
            workload.start(vm.guest)
            report = scenarios.install_cloudskulk(host)
            workload.stop()
            reports.append(report)
        return reports

    reports = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    for report in reports[:1]:
        print(report.summary())
    times = [r.migration_seconds for r in reports]
    print(f"migration times across seeds: {[f'{t:.1f}s' for t in times]}")
    print("paper: installation < 1 minute, dominated by the migration")

    for report in reports:
        assert report.success
        # The *attack-visible* work (migration + cleanup) is sub-minute;
        # GuestX's own boot happens before the victim is ever touched.
        assert report.migration_seconds < 60
        assert report.step_seconds("step5-cleanup") < 1.0
        # Stealth completed: PID swapped, ports taken over, history clean.
        assert report.guestx_vm.process.pid == report.victim_pid
        assert report.hostfwds_taken_over
        assert report.history_lines_removed > 0
