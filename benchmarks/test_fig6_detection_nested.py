"""Fig 6: detection timings t0/t1/t2 WITH a nested VM (CloudSkulk).

Paper: no significant difference between t1 and t2, but both are far
above t0 — after the victim (L2) changed its copy, the impersonating L1
still holds the original File-A, so the fresh L0 copy merges again.
"""

import statistics

import pytest

from repro import scenarios
from repro.analysis.report import render_figure_series
from repro.analysis.stats import summarize
from repro.core.detection.dedup_detector import DedupDetector


def _run_detection(seed):
    host, cloud, _ksm, _loc = scenarios.detection_setup(nested=True, seed=seed)
    detector = DedupDetector(host, cloud)
    return host.engine.run(host.engine.process(detector.run()))


@pytest.mark.figure("fig6")
def test_fig6_detection_nested(benchmark):
    report = benchmark.pedantic(lambda: _run_detection(101), rounds=1, iterations=1)

    series = {
        "t0 (baseline)": summarize(report.t0_us),
        "t1 (merged)": summarize(report.t1_us),
        "t2 (after guest edit)": summarize(report.t2_us),
    }
    print()
    print(
        render_figure_series(
            "Fig 6: per-page write times, nested VM present", series,
            unit="us", label_width=24,
        )
    )
    print("verdict:", report.verdict.verdict, "—", report.verdict.explanation())

    m0 = statistics.median(report.t0_us)
    m1 = statistics.median(report.t1_us)
    m2 = statistics.median(report.t2_us)
    assert m1 > 100 * m0          # both merged-class,
    assert m2 > 100 * m0
    assert 0.5 < m1 / m2 < 2.0    # ... and mutually indistinguishable
    assert report.verdict.t1_vs_t2_p_value > 0.01
    assert report.verdict.verdict == "nested"


@pytest.mark.figure("fig6")
def test_fig6_detection_effective_across_seeds(benchmark, seeds):
    """The paper's bottom line: the approach *effectively detects*
    CloudSkulk — no misses across runs."""

    def run_all():
        return [_run_detection(seed).verdict.verdict for seed in seeds[:3]]

    verdicts = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print("\nverdicts across seeds:", verdicts)
    assert verdicts == ["nested"] * 3
