"""Ablation: XBZRLE compression vs the dirty-page storm.

Fig 4's CPU/memory case is painful because re-sent pages cost full
pages.  QEMU's XBZRLE capability delta-encodes resends; for an attacker
this is a tactical option — a faster nested migration shrinks the
attack's risky window — and for a defender it shifts what "anomalously
long migration traffic" looks like.
"""

import pytest

from repro import scenarios
from repro.analysis.report import render_table
from repro.qemu.config import DriveSpec
from repro.qemu.qemu_img import qemu_img_create
from repro.qemu.vm import launch_vm
from repro.workloads.kernel_compile import KernelCompileWorkload


def _run(xbzrle, seed=81):
    host = scenarios.testbed(seed=seed)
    vm = scenarios.launch_victim(host)
    workload = KernelCompileWorkload()
    workload.start(vm.guest, loop_forever=True)
    qemu_img_create(host, "/var/lib/images/xb.qcow2", 20)
    config = vm.config.clone_for_destination(
        "xb", incoming_port=4444, keep_hostfwds=False
    )
    config.drives = [DriveSpec("/var/lib/images/xb.qcow2")]
    launch_vm(host, config)
    if xbzrle:
        vm.monitor.execute("migrate_set_capability xbzrle on")
    vm.monitor.execute("migrate -d tcp:127.0.0.1:4444")
    host.engine.run(vm.migration_process)
    workload.stop()
    return vm.migration_stats


@pytest.mark.figure("ablation-xbzrle")
def test_ablation_xbzrle(benchmark):
    def run_all():
        return {label: _run(flag) for label, flag in
                (("plain", False), ("xbzrle", True))}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [
            label,
            stats.total_time,
            stats.iterations,
            stats.throttle_percentage,
            stats.ram_bytes / 1e6,
        ]
        for label, stats in results.items()
    ]
    print()
    print(
        render_table(
            "Ablation: compile-workload migration, XBZRLE off/on",
            ["mode", "total (s)", "iters", "throttle %", "sent (MB)"],
            rows,
            col_width=14,
        )
    )

    plain, xbzrle = results["plain"], results["xbzrle"]
    assert xbzrle.total_time < plain.total_time * 0.6
    assert xbzrle.ram_bytes < plain.ram_bytes
    assert xbzrle.throttle_percentage <= plain.throttle_percentage
