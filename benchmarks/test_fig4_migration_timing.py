"""Fig 4: live-migration end-to-end time, L0-L0 vs L0-L1, by workload.

Paper's L0-L1 anchors: idle ~26 s (the best-case CloudSkulk install),
Filebench ~29 s, kernel compile ~820 s.  The shape under test:

* idle < I/O-intensive << CPU/memory-intensive, in both series;
* L0-L1 strictly above L0-L0 for every workload (the nested
  destination pays real per-page costs);
* the CPU/memory case converges only through auto-converge throttling
  and lands an order of magnitude above the other workloads.
"""

import pytest

from repro import scenarios
from repro.analysis.report import render_comparison_labels, render_figure_series
from repro.analysis.stats import summarize
from repro.qemu.config import DriveSpec
from repro.qemu.qemu_img import qemu_img_create
from repro.qemu.vm import launch_vm
from repro.workloads.filebench import FilebenchWorkload
from repro.workloads.idle import IdleWorkload
from repro.workloads.kernel_compile import KernelCompileWorkload

PAPER_L0_L1 = {"idle": 26.0, "filebench": 29.0, "kernel-compile": 820.0}

WORKLOADS = {
    "idle": (IdleWorkload, {}),
    "filebench": (FilebenchWorkload, {}),
    "kernel-compile": (KernelCompileWorkload, {"loop_forever": True}),
}


def _migrate_l0_l0(workload_name, seed):
    host = scenarios.testbed(seed=seed)
    vm = scenarios.launch_victim(host)
    factory, run_kwargs = WORKLOADS[workload_name]
    workload = factory()
    workload.start(vm.guest, **run_kwargs)
    qemu_img_create(host, "/var/lib/images/dest.qcow2", 20)
    config = vm.config.clone_for_destination(
        "dest0", incoming_port=4444, keep_hostfwds=False
    )
    config.drives = [DriveSpec("/var/lib/images/dest.qcow2")]
    launch_vm(host, config)
    start = host.engine.now
    vm.monitor.execute("migrate -d tcp:127.0.0.1:4444")
    host.engine.run(vm.migration_process)
    workload.stop()
    return host.engine.now - start


def _migrate_l0_l1(workload_name, seed):
    host = scenarios.testbed(seed=seed)
    vm = scenarios.launch_victim(host)
    factory, run_kwargs = WORKLOADS[workload_name]
    workload = factory()
    workload.start(vm.guest, **run_kwargs)
    report = scenarios.install_cloudskulk(host)
    workload.stop()
    return report.migration_seconds


@pytest.mark.figure("fig4")
def test_fig4_migration_timing(benchmark, seeds):
    def run_all():
        results = {}
        for name in WORKLOADS:
            # 3 seeds for the minutes-long compile case, 5 otherwise.
            use = seeds[:3] if name == "kernel-compile" else seeds
            results[f"{name} L0-L0"] = [_migrate_l0_l0(name, s) for s in use]
            results[f"{name} L0-L1"] = [_migrate_l0_l1(name, s) for s in use]
        return results

    samples = benchmark.pedantic(run_all, rounds=1, iterations=1)
    series = {label: summarize(values) for label, values in samples.items()}

    print()
    print(
        render_figure_series(
            "Fig 4: Live migration end-to-end time", series, unit="s",
            label_width=26,
        )
    )
    print(
        render_comparison_labels(
            [
                (
                    f"{name} L0-L0",
                    series[f"{name} L0-L0"].mean,
                    f"{name} L0-L1",
                    series[f"{name} L0-L1"].mean,
                )
                for name in WORKLOADS
            ]
        )
    )
    print(f"paper L0-L1 anchors: {PAPER_L0_L1}")

    nested = {name: series[f"{name} L0-L1"].mean for name in WORKLOADS}
    local = {name: series[f"{name} L0-L0"].mean for name in WORKLOADS}
    # Ordering within each series.
    assert local["idle"] < local["filebench"] < local["kernel-compile"]
    assert nested["idle"] < nested["filebench"] < nested["kernel-compile"]
    # Nested migration always costs more.
    for name in WORKLOADS:
        assert nested[name] > local[name] * 1.05
    # Anchors: idle within ~40% of the paper's 26 s; compile an order of
    # magnitude above idle (paper: 26 s -> 820 s is ~32x; we accept >8x).
    assert 15 < nested["idle"] < 40
    assert 20 < nested["filebench"] < 50
    assert nested["kernel-compile"] > 8 * nested["idle"]
    assert nested["kernel-compile"] > 200


@pytest.mark.figure("fig4")
def test_install_time_dominated_by_migration(benchmark):
    """§V-B: 'installation time ... dominated almost entirely by the
    nested live migration step'."""

    def run():
        host = scenarios.testbed(seed=77)
        scenarios.launch_victim(host)
        return scenarios.install_cloudskulk(host)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(report.summary())
    assert report.migration_seconds > 0.4 * report.total_seconds
