"""Ablation: detector complementarity — the deployment matrix.

The library now carries four host-side channels.  Each has a blind
spot; together they cover each other:

* **dedup timing** — needs KSM on; works on idle victims;
* **exit census** — needs the nested guest to be *running work*;
  works with KSM off;
* **VMCS scan** — instant, but VT-x-signature-bound;
* **VMI fingerprint** — defeated by competent impersonation.

This bench builds the coverage matrix over (idle vs busy victim) x
(KSM on vs off) and asserts at least one channel fires in every cell —
while no single channel covers all cells.
"""

import pytest

from repro import scenarios
from repro.analysis.report import render_table
from repro.core.detection.dedup_detector import DedupDetector
from repro.core.detection.exit_census import exit_census
from repro.core.detection.vmcs_scan import scan_for_hypervisors
from repro.workloads.filebench import FilebenchWorkload


def _cell(busy, ksm_on, seed):
    host, cloud, ksm, locator = scenarios.detection_setup(nested=True, seed=seed)
    if not ksm_on:
        ksm.stop()
    workload = None
    if busy:
        workload = FilebenchWorkload()
        workload.start(locator(), duration=10_000.0)
        host.engine.run(until=host.engine.now + 30.0)

    dedup = DedupDetector(host, cloud, file_pages=15)
    dedup_verdict = host.engine.run(host.engine.process(dedup.run())).verdict
    census = host.engine.run(host.engine.process(exit_census(host)))
    scan = host.engine.run(host.engine.process(scan_for_hypervisors(host)))
    if workload is not None:
        workload.stop()
    return {
        "dedup": dedup_verdict.verdict == "nested",
        "census": census.hypervisor_detected,
        "vmcs": scan.nested_hypervisor_detected,
    }


@pytest.mark.figure("ablation-coverage")
def test_ablation_detector_coverage(benchmark):
    def run_all():
        return {
            ("idle", "ksm-on"): _cell(False, True, 601),
            ("idle", "ksm-off"): _cell(False, False, 602),
            ("busy", "ksm-on"): _cell(True, True, 603),
            ("busy", "ksm-off"): _cell(True, False, 604),
        }

    matrix = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for (victim, ksm_state), hits in sorted(matrix.items()):
        rows.append(
            [
                f"{victim}/{ksm_state}",
                "HIT" if hits["dedup"] else "-",
                "HIT" if hits["census"] else "-",
                "HIT" if hits["vmcs"] else "-",
            ]
        )
    print()
    print(
        render_table(
            "Detector coverage matrix (CloudSkulk present in every cell)",
            ["scenario", "dedup", "exit-census", "vmcs-scan"],
            rows,
            col_width=14,
        )
    )

    # Every cell is covered by at least one channel...
    for hits in matrix.values():
        assert any(hits.values())
    # ...the census needs a busy victim...
    assert not matrix[("idle", "ksm-off")]["census"]
    assert matrix[("busy", "ksm-off")]["census"]
    # ...and dedup needs KSM.
    assert matrix[("idle", "ksm-on")]["dedup"]
    assert not matrix[("idle", "ksm-off")]["dedup"]
