"""Ablation: File-A size sweep (§VI-D).

The paper used 100 pages "for the purpose of demonstration" and argues
"in practice, defenders can just use one or few pages".  This bench
sweeps File-A from 1 to 100 pages and verifies the verdict never
changes in either scenario, while protocol cost scales linearly.
"""

import pytest

from repro import scenarios
from repro.analysis.report import render_table
from repro.core.detection.dedup_detector import DedupDetector

PAGE_SWEEP = (1, 4, 16, 100)


def _verdict_and_cost(nested, pages, seed=101):
    host, cloud, _ksm, _loc = scenarios.detection_setup(nested=nested, seed=seed)
    detector = DedupDetector(host, cloud, file_pages=pages)
    start = host.engine.now
    report = host.engine.run(host.engine.process(detector.run()))
    return report.verdict.verdict, host.engine.now - start


@pytest.mark.figure("ablation-file-pages")
def test_ablation_detection_file_pages(benchmark):
    def run_all():
        out = {}
        for pages in PAGE_SWEEP:
            out[pages] = {
                "clean": _verdict_and_cost(False, pages),
                "nested": _verdict_and_cost(True, pages),
            }
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for pages in PAGE_SWEEP:
        clean_verdict, clean_cost = results[pages]["clean"]
        nested_verdict, nested_cost = results[pages]["nested"]
        rows.append(
            [f"{pages} page(s)", clean_verdict, nested_verdict, nested_cost]
        )
    print()
    print(
        render_table(
            "Ablation: detection vs File-A size",
            ["File-A", "clean verdict", "nested verdict", "protocol (s)"],
            rows,
            col_width=16,
        )
    )
    print("paper: 'defenders can just use one or few pages'")

    for pages in PAGE_SWEEP:
        assert results[pages]["clean"][0] == "clean"
        assert results[pages]["nested"][0] == "nested"
    # Cost is dominated by KSM settle waits, not file size: using one
    # page costs essentially the same as 100.
    assert (
        results[1]["nested"][1]
        > 0.9 * results[100]["nested"][1] - 5.0
    )
