"""Ablation: detection vantage point — L2 vs L0 (§VI-A).

The paper's design argument in one table: an in-guest timing detector
works only until the attacker notices; the L1 hypervisor can scale the
guest's clock and erase the anomaly.  The L0 dedup detector's stopwatch
is out of reach.
"""

import pytest

from repro import scenarios
from repro.analysis.report import render_table
from repro.core.detection.dedup_detector import DedupDetector
from repro.core.detection.guest_side import (
    GuestSideDetector,
    apply_timing_deception,
)


def _guest_side(victim, host):
    detector = GuestSideDetector(victim)
    verdict = host.engine.run(host.engine.process(detector.run()))
    return "nested" if verdict.nested_suspected else "clean"


def _host_side(host, cloud):
    detector = DedupDetector(host, cloud, file_pages=20)
    report = host.engine.run(host.engine.process(detector.run()))
    return report.verdict.verdict


@pytest.mark.figure("ablation-vantage")
def test_ablation_detection_vantage(benchmark):
    def run_all():
        results = {}
        # Honest attacker (no timing counter-measures).
        host, cloud, _ksm, locator = scenarios.detection_setup(
            nested=True, seed=303
        )
        results[("naive attacker", "L2 timing")] = _guest_side(locator(), host)
        results[("naive attacker", "L0 dedup")] = _host_side(host, cloud)
        # Attacker deploys the §VI-A timing deception.
        host2, cloud2, _ksm2, locator2 = scenarios.detection_setup(
            nested=True, seed=304
        )
        apply_timing_deception(locator2())
        results[("deceiving attacker", "L2 timing")] = _guest_side(
            locator2(), host2
        )
        results[("deceiving attacker", "L0 dedup")] = _host_side(host2, cloud2)
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [
            attacker,
            results[(attacker, "L2 timing")],
            results[(attacker, "L0 dedup")],
        ]
        for attacker in ("naive attacker", "deceiving attacker")
    ]
    print()
    print(
        render_table(
            "Ablation: detection vantage vs attacker sophistication",
            ["attacker", "L2 timing", "L0 dedup"],
            rows,
            col_width=20,
        )
    )
    print("paper §VI-A: 'instead of running a detection module at L2, "
          "we propose to deploy the detection mechanism at L0'")

    assert results[("naive attacker", "L2 timing")] == "nested"
    assert results[("naive attacker", "L0 dedup")] == "nested"
    # The deception kills the guest-side detector but not the host-side.
    assert results[("deceiving attacker", "L2 timing")] == "clean"
    assert results[("deceiving attacker", "L0 dedup")] == "nested"
