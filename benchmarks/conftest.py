"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures,
prints it next to the paper's reported values, and asserts the *shape*
(ordering, rough factors, crossovers) — not the absolute numbers, since
the substrate is a simulator rather than the authors' testbed.

All measurements are in virtual time; the ``benchmark`` fixture wraps
the simulation run so `--benchmark-only` also reports how much wall
time each reproduction costs.

The paper averages 5 consecutive runs; we average 5 independently
seeded runs (3 for the heaviest migration cases, noted inline).
"""

import pytest

SEEDS = (101, 202, 303, 404, 505)


@pytest.fixture
def seeds():
    return SEEDS


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "figure(name): marks which paper figure/table a bench regenerates"
    )
