"""Ablation: what the victim's *users* feel (§III-A's stealth claim).

"From the VM owner's perspective, the owner does not observe any
obvious behavior change ... However, the VM owner will experience a
performance change due to the additional layer of virtualization."

We serve a web application from the victim, measure client-observed
request latency before the attack, install CloudSkulk, and measure
again over the *same public endpoint*.  The claim under test: the
service keeps answering at the same address, and the added latency is
real but small in absolute terms — the kind of change no user files a
ticket about.
"""

import statistics

import pytest

from repro import scenarios
from repro.analysis.report import render_table
from repro.net.stack import Link, NetworkNode
from repro.workloads.webserver import LatencyProbe, WebService

WEB_HOST_PORT = 8080


@pytest.mark.figure("ablation-user-latency")
def test_ablation_user_latency(benchmark):
    def run_all():
        host = scenarios.testbed(seed=88)
        config = scenarios.victim_config()
        config.nics[0].hostfwds.append(("tcp", WEB_HOST_PORT, 80))
        vm = scenarios.launch_victim(host, config)
        WebService(vm.guest, port=80)
        client = NetworkNode(host.engine, "browser")
        Link(client, host.net_node, 941e6, 1.2e-4)
        probe = LatencyProbe(client, host.net_node, WEB_HOST_PORT)

        before = host.engine.run(probe.start(host, requests=150))
        report = scenarios.install_cloudskulk(host)
        probe_after = LatencyProbe(client, host.net_node, WEB_HOST_PORT)
        after = host.engine.run(probe_after.start(host, requests=150))
        return before.metrics, after.metrics, report

    before, after, report = benchmark.pedantic(run_all, rounds=1, iterations=1)

    b_median = before["median_ms"]
    a_median = after["median_ms"]
    b_p95 = statistics.quantiles(before["rtts_ms"], n=20)[18]
    a_p95 = statistics.quantiles(after["rtts_ms"], n=20)[18]
    print()
    print(
        render_table(
            "User-observed request latency, same public endpoint",
            ["", "median (ms)", "p95 (ms)"],
            [
                ["before attack", b_median, b_p95],
                ["after attack", a_median, a_p95],
                ["delta", a_median - b_median, a_p95 - b_p95],
            ],
            col_width=16,
        )
    )

    # The service still answers at the same address after the attack.
    assert len(after["rtts_ms"]) == 150
    # The added latency is real...
    assert a_median > b_median
    # ...but under a millisecond and under 2x — nothing a human notices.
    assert a_median - b_median < 1.0
    assert a_median / b_median < 2.0
