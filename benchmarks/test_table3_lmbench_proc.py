"""Table III: lmbench process/IPC latencies (µs) at L0/L1/L2.

Paper shape: trivial syscalls grow marginally; pipe and AF_UNIX
latencies explode ~19x / ~12x at L2 (full exit trampolining); fork+exit
costs the same at L0 and L1 (hardware EPT) but ~3x at L2 (the extra
traps of [38]).
"""

import pytest

from repro import scenarios
from repro.analysis.report import render_table
from repro.workloads.lmbench.proc import PROC_OPS, LmbenchProc

PAPER = {
    "L0": {
        "signal handler installation": 0.075,
        "signal handler overhead": 0.50,
        "protection fault": 0.27,
        "pipe latency": 3.49,
        "AF_UNIX sock stream latency": 3.58,
        "fork+ exit": 74.6,
        "fork+ execve": 245.8,
        "fork+ /bin/sh -c": 918.7,
    },
    "L1": {
        "signal handler installation": 0.096,
        "signal handler overhead": 0.58,
        "protection fault": 0.29,
        "pipe latency": 6.75,
        "AF_UNIX sock stream latency": 5.37,
        "fork+ exit": 73.65,
        "fork+ execve": 275.05,
        "fork+ /bin/sh -c": 966.67,
    },
    "L2": {
        "signal handler installation": 0.10,
        "signal handler overhead": 0.60,
        "protection fault": 0.32,
        "pipe latency": 65.49,
        "AF_UNIX sock stream latency": 43.98,
        "fork+ exit": 242.19,
        "fork+ execve": 588.50,
        "fork+ /bin/sh -c": 1826.00,
    },
}


@pytest.mark.figure("table3")
def test_table3_lmbench_proc(benchmark):
    def run_all():
        out = {}
        for level in (0, 1, 2):
            host, system = scenarios.system_at_level(level, seed=123)
            result = host.engine.run(
                LmbenchProc().start(system, repetition_scale=0.25)
            )
            out[level] = result.metrics["latencies_us"]
        return out

    measured = benchmark.pedantic(run_all, rounds=1, iterations=1)

    labels = [label for label, _p, _r in PROC_OPS]
    columns = ["Config"] + [label.split()[0] for label in labels]
    rows = [
        [f"L{level}"] + [measured[level][label] for label in labels]
        for level in (0, 1, 2)
    ]
    print()
    print(render_table("TABLE III: lmbench processes (us)", columns, rows, col_width=12))
    for level in ("L0", "L1", "L2"):
        print(f"paper {level}:", [PAPER[level][label] for label in labels])

    # L0 exact-ish (model input), L1/L2 within 25% of the paper cell.
    for label in labels:
        assert measured[0][label] == pytest.approx(PAPER["L0"][label], rel=0.10)
        assert measured[1][label] == pytest.approx(PAPER["L1"][label], rel=0.25)
        assert measured[2][label] == pytest.approx(PAPER["L2"][label], rel=0.25)

    # Headline shapes.
    assert measured[2]["pipe latency"] / measured[1]["pipe latency"] > 5
    assert measured[1]["fork+ exit"] == pytest.approx(
        measured[0]["fork+ exit"], rel=0.10
    )
    assert 2.5 < measured[2]["fork+ exit"] / measured[1]["fork+ exit"] < 4.5
