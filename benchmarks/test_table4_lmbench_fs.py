"""Table IV: lmbench filesystem latency — creations/deletions per second.

Paper shape: L1 and L2 track the L0 baseline for file operations, with
one anomaly the paper leaves unexplained — L2's 0K-file creation rate
collapses to 2,430/s.  We reproduce the anomaly via a metadata-sync
path (see repro/workloads/lmbench/fs.py and EXPERIMENTS.md) and verify
deletions never collapse.
"""

import pytest

from repro import scenarios
from repro.analysis.report import render_table
from repro.workloads.lmbench.fs import FILE_SIZES_KB, LmbenchFileOps

PAPER_CREATE = {
    "L0": {0: 126418, 1: 99112, 4: 99627, 10: 79869},
    "L1": {0: 121718, 1: 97073, 4: 95821, 10: 77118},
    "L2": {0: 2430, 1: 62933, 4: 96588, 10: 70098},
}
PAPER_DELETE = {
    "L0": {0: 379158, 1: 280884, 4: 279893, 10: 214767},
    "L1": {0: 361860, 1: 268977, 4: 273863, 10: 204260},
    "L2": {0: 320349, 1: 262478, 4: 251766, 10: 196449},
}


@pytest.mark.figure("table4")
def test_table4_lmbench_fs(benchmark):
    def run_all():
        out = {}
        for level in (0, 1, 2):
            host, system = scenarios.system_at_level(level, seed=123)
            result = host.engine.run(
                LmbenchFileOps().start(system, files_per_size=600)
            )
            out[level] = (
                result.metrics["creations_per_s"],
                result.metrics["deletions_per_s"],
            )
        return out

    measured = benchmark.pedantic(run_all, rounds=1, iterations=1)

    columns = ["Config"] + [
        f"{kind}{size}K" for size in FILE_SIZES_KB for kind in ("crt", "del")
    ]
    rows = []
    for level in (0, 1, 2):
        creates, deletes = measured[level]
        row = [f"L{level}"]
        for size in FILE_SIZES_KB:
            row += [creates[size], deletes[size]]
        rows.append(row)
    print()
    print(render_table("TABLE IV: file create/delete per second", columns, rows, col_width=11))
    print("paper create:", PAPER_CREATE)
    print("paper delete:", PAPER_DELETE)

    creates0, deletes0 = measured[0]
    creates1, deletes1 = measured[1]
    creates2, deletes2 = measured[2]
    # L0/L1 near the paper's columns.
    for size in FILE_SIZES_KB:
        assert creates0[size] == pytest.approx(PAPER_CREATE["L0"][size], rel=0.25)
        assert creates1[size] == pytest.approx(PAPER_CREATE["L1"][size], rel=0.25)
        assert deletes0[size] == pytest.approx(PAPER_DELETE["L0"][size], rel=0.30)
    # L1 matches the baseline (the paper's claim).
    for size in FILE_SIZES_KB:
        assert 0.8 < creates1[size] / creates0[size] <= 1.02
    # The L2 0K-create anomaly: order-of-magnitude collapse.
    assert creates2[0] == pytest.approx(PAPER_CREATE["L2"][0], rel=0.35)
    assert creates1[0] / creates2[0] > 20
    # Sized creates survive at L2.
    assert creates2[1] == pytest.approx(PAPER_CREATE["L2"][1], rel=0.35)
    # Deletions never collapse at any level.
    for level_deletes in (deletes0, deletes1, deletes2):
        for size in FILE_SIZES_KB:
            assert level_deletes[size] > 100_000
