"""Fig 3: netperf TCP_STREAM throughput at L0 / L1 / L2.

Paper: the three levels are statistically indistinguishable — the
nominal L1->L2 difference (they measured +8.95%) sits inside the RSD
bars (1.11% / 10.32% / 3.96%).  The structural reason: the physical
wire, not per-level packet processing, is the bottleneck.
"""

import pytest

from repro import scenarios
from repro.analysis.report import render_figure_series
from repro.analysis.stats import overlapping_within_noise, summarize
from repro.net.stack import Link, NetworkNode
from repro.workloads.netperf import NetperfServer, NetperfWorkload

WIRE_BPS = 941e6
WIRE_LATENCY_S = 1.2e-4


def _netperf_at(level, seed):
    host, system = scenarios.system_at_level(level, seed=seed)
    peer = NetworkNode(host.engine, "netserver-box")
    Link(peer, host.net_node, WIRE_BPS, WIRE_LATENCY_S)
    server = NetperfServer(peer)
    result = host.engine.run(
        NetperfWorkload(server).start(system, duration=10.0)
    )
    return result.metrics["throughput_mbps"]


@pytest.mark.figure("fig3")
def test_fig3_netperf(benchmark, seeds):
    def run_all():
        return {
            level: [_netperf_at(level, seed) for seed in seeds]
            for level in (0, 1, 2)
        }

    samples = benchmark.pedantic(run_all, rounds=1, iterations=1)
    series = {f"L{level}": summarize(samples[level]) for level in (0, 1, 2)}

    print()
    print(
        render_figure_series(
            "Fig 3: Netperf TCP_STREAM throughput", series, unit="Mbit/s"
        )
    )
    print("paper: all three levels equal within the noise bars")

    l0, l1, l2 = series["L0"], series["L1"], series["L2"]
    # Every level achieves most of the wire.
    for summary in (l0, l1, l2):
        assert summary.mean > 0.75 * WIRE_BPS / 1e6
    # The paper's flatness claim: adjacent levels within ~12% of each
    # other and the extremes within 15%.
    assert abs(l1.mean - l0.mean) / l0.mean < 0.12
    assert abs(l2.mean - l1.mean) / l1.mean < 0.12
    assert abs(l2.mean - l0.mean) / l0.mean < 0.15
